// Tests for the semiring-generic distributed scheduler: the identical
// communication-avoiding schedule computing widest paths and transitive
// closure, checked against sequential oracles, plus the invariance of
// the *communication* profile across semirings (the schedule is data-
// oblivious: same graph, same machine ⇒ same messages, whatever the
// algebra).
#include <gtest/gtest.h>

#include "core/closure.hpp"
#include "core/sparse_apsp.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

namespace capsp {
namespace {

WeightOptions capacities() {
  WeightOptions opts;
  opts.min_weight = 1;
  opts.max_weight = 25;
  return opts;
}

class DistributedBottleneck
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DistributedBottleneck, MatchesWidestDijkstra) {
  const auto [case_index, height] = GetParam();
  Rng rng(400 + static_cast<std::uint64_t>(case_index));
  Graph graph;
  switch (case_index) {
    case 0: graph = make_grid2d(8, 8, rng, capacities()); break;
    case 1: graph = make_erdos_renyi(60, 4.0, rng, capacities()); break;
    case 2: graph = make_random_tree(60, rng, capacities()); break;
    default:
      graph = make_random_geometric(55, 0.22, rng, capacities());
      break;
  }
  SparseApspOptions options;
  options.height = height;
  const SparseApspResult result = run_sparse_bottleneck(graph, options);
  for (Vertex s = 0; s < graph.num_vertices(); ++s) {
    const auto oracle = widest_path_sssp(graph, s);
    for (Vertex t = 0; t < graph.num_vertices(); ++t) {
      if (s == t) {
        ASSERT_TRUE(is_inf(result.distances.at(s, t)));
      } else {
        ASSERT_EQ(result.distances.at(s, t),
                  oracle[static_cast<std::size_t>(t)])
            << "case " << case_index << " h=" << height << " " << s << "->"
            << t;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesTimesHeights, DistributedBottleneck,
    ::testing::Combine(::testing::Range(0, 4), ::testing::Values(2, 3)));

TEST(DistributedBottleneck, MatchesSequentialClosure) {
  Rng rng(5);
  const Graph graph = make_grid2d(9, 9, rng, capacities());
  SparseApspOptions options;
  options.height = 3;
  const SparseApspResult distributed = run_sparse_bottleneck(graph, options);
  const DistBlock sequential = bottleneck_apsp(graph);
  EXPECT_EQ(distributed.distances, sequential);
}

TEST(DistributedBottleneck, RejectsNonPositiveCapacities) {
  GraphBuilder builder(3);
  builder.add_edge(0, 1, -1.0);
  builder.add_edge(1, 2, 2.0);
  const Graph graph = std::move(builder).build();
  EXPECT_THROW(run_sparse_bottleneck(graph), check_error);
}

TEST(DistributedClosure, MatchesConnectedComponents) {
  Rng rng(6);
  GraphBuilder builder(50);
  for (Vertex i = 0; i < 19; ++i) builder.add_edge(i, i + 1, 3);
  for (Vertex i = 20; i < 44; ++i) builder.add_edge(i, i + 1, 3);
  const Graph graph = std::move(builder).build();
  SparseApspOptions options;
  options.height = 3;
  const SparseApspResult result = run_sparse_closure(graph, options);
  const auto label = connected_components(graph);
  for (Vertex u = 0; u < graph.num_vertices(); ++u)
    for (Vertex v = 0; v < graph.num_vertices(); ++v) {
      const bool connected =
          label[static_cast<std::size_t>(u)] ==
          label[static_cast<std::size_t>(v)];
      if (u == v) {
        EXPECT_TRUE(is_inf(result.distances.at(u, v)) ||
                    result.distances.at(u, v) == 1);
      } else {
        EXPECT_EQ(result.distances.at(u, v) == 1, connected)
            << u << "," << v;
      }
    }
}

TEST(DistributedSemiring, CommunicationIsAlgebraOblivious) {
  // Same dissection, same machine: the message/word profile must be
  // identical whichever semiring runs — communication depends only on
  // the block structure, which is the deeper reason the paper's analysis
  // carries over to any closed semiring.
  Rng rng(7);
  const Graph graph = make_grid2d(10, 10, rng, capacities());
  Rng nd_rng(8);
  const Dissection nd = nested_dissection(graph, 3, nd_rng);
  SparseApspOptions options;
  options.collect_distances = false;
  const auto minplus = run_sparse_apsp_semiring(
      graph, nd, SemiringKernels::of<MinPlusSemiring>(), options);
  const auto maxmin = run_sparse_apsp_semiring(
      graph, nd, SemiringKernels::of<MaxMinSemiring>(), options);
  EXPECT_EQ(minplus.costs.critical_latency, maxmin.costs.critical_latency);
  EXPECT_EQ(minplus.costs.critical_bandwidth,
            maxmin.costs.critical_bandwidth);
  EXPECT_EQ(minplus.costs.total_messages, maxmin.costs.total_messages);
  EXPECT_EQ(minplus.costs.total_words, maxmin.costs.total_words);
}

TEST(DistributedSemiring, StrategiesAgreeUnderMaxMin) {
  // The R4 strategy ablation is semiring-generic too.
  Rng rng(9);
  const Graph graph = make_grid2d(8, 8, rng, capacities());
  DistBlock reference;
  for (R4Strategy strategy :
       {R4Strategy::kOneToOne, R4Strategy::kSharedWorkers,
        R4Strategy::kSequential}) {
    SparseApspOptions options;
    options.height = 3;
    options.r4_strategy = strategy;
    const SparseApspResult result = run_sparse_bottleneck(graph, options);
    if (reference.empty()) {
      reference = result.distances;
    } else {
      EXPECT_EQ(result.distances, reference);
    }
  }
}

}  // namespace
}  // namespace capsp
