// Tests for the partitioning substrate: bisection balance/cut quality,
// Hopcroft–Karp matching, König separator validity, and nested dissection
// structure (permutation validity, supernode ranges, the Fig. 1d
// cousin-block emptiness property).
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "partition/bisect.hpp"
#include "partition/nested_dissection.hpp"
#include "partition/separator.hpp"
#include "semiring/graph_matrix.hpp"

namespace capsp {
namespace {

void expect_balanced(const Bisection& bisection, Vertex n,
                     double tolerance = 0.25) {
  const Vertex s0 = bisection.side_size(0);
  const Vertex s1 = bisection.side_size(1);
  EXPECT_EQ(s0 + s1, n);
  EXPECT_GE(s0, static_cast<Vertex>(n * (0.5 - tolerance)));
  EXPECT_GE(s1, static_cast<Vertex>(n * (0.5 - tolerance)));
}

TEST(Bisect, GridBalancedWithSmallCut) {
  Rng rng(1);
  const Graph graph = make_grid2d(16, 16, rng);
  const Bisection bisection = bisect_graph(graph, rng);
  expect_balanced(bisection, 256);
  EXPECT_EQ(bisection.cut_edges, cut_size(graph, bisection.side));
  // Optimal cut of a 16x16 grid is 16; multilevel should get close.
  EXPECT_LE(bisection.cut_edges, 3 * 16);
}

TEST(Bisect, PathCutIsTiny) {
  Rng rng(2);
  const Graph graph = make_path(200, rng);
  const Bisection bisection = bisect_graph(graph, rng);
  expect_balanced(bisection, 200);
  EXPECT_LE(bisection.cut_edges, 4);
}

TEST(Bisect, EmptyAndSingletonGraphs) {
  Rng rng(3);
  const Graph empty = std::move(GraphBuilder(0)).build();
  EXPECT_TRUE(bisect_graph(empty, rng).side.empty());
  const Graph one = std::move(GraphBuilder(1)).build();
  const Bisection bisection = bisect_graph(one, rng);
  EXPECT_EQ(bisection.side.size(), 1u);
  EXPECT_EQ(bisection.cut_edges, 0);
}

TEST(Bisect, EdgelessGraphStillBalanced) {
  Rng rng(4);
  const Graph graph = std::move(GraphBuilder(64)).build();
  const Bisection bisection = bisect_graph(graph, rng);
  expect_balanced(bisection, 64);
  EXPECT_EQ(bisection.cut_edges, 0);
}

TEST(Bisect, DisconnectedComponentsSplit) {
  Rng rng(5);
  GraphBuilder builder(40);
  for (Vertex i = 0; i < 19; ++i) {
    builder.add_edge(i, i + 1, 1);
    builder.add_edge(20 + i, 21 + i, 1);
  }
  const Graph graph = std::move(builder).build();
  const Bisection bisection = bisect_graph(graph, rng);
  expect_balanced(bisection, 40);
  EXPECT_LE(bisection.cut_edges, 2);
}

TEST(Bisect, DeterministicGivenRngState) {
  Rng a(7), b(7);
  const Graph graph = make_erdos_renyi(120, 4.0, a);
  Rng a2(9), b2(9);
  const Graph graph2 = make_erdos_renyi(120, 4.0, b);
  const Bisection x = bisect_graph(graph, a2);
  const Bisection y = bisect_graph(graph2, b2);
  EXPECT_EQ(x.side, y.side);
  EXPECT_EQ(x.cut_edges, y.cut_edges);
}

TEST(HopcroftKarp, PerfectMatchingOnDisjointEdges) {
  // 3 left, 3 right, edges i-i.
  std::vector<std::vector<Vertex>> adjacency{{0}, {1}, {2}};
  Vertex size = 0;
  const auto match = hopcroft_karp(adjacency, 3, size);
  EXPECT_EQ(size, 3);
  for (Vertex l = 0; l < 3; ++l) EXPECT_EQ(match[static_cast<std::size_t>(l)], l);
}

TEST(HopcroftKarp, AugmentingPathNeeded) {
  // l0-{r0}, l1-{r0, r1}: greedy l1->r0 would block l0; HK must augment.
  std::vector<std::vector<Vertex>> adjacency{{0}, {0, 1}};
  Vertex size = 0;
  const auto match = hopcroft_karp(adjacency, 2, size);
  EXPECT_EQ(size, 2);
  EXPECT_EQ(match[0], 0);
  EXPECT_EQ(match[1], 1);
}

TEST(HopcroftKarp, StarGraphMatchesOne) {
  std::vector<std::vector<Vertex>> adjacency{{0}, {0}, {0}};
  Vertex size = 0;
  hopcroft_karp(adjacency, 1, size);
  EXPECT_EQ(size, 1);
}

TEST(HopcroftKarp, MatchingIsValid) {
  // Random bipartite graph: returned matching must be consistent.
  Rng rng(11);
  std::vector<std::vector<Vertex>> adjacency(30);
  for (auto& adj : adjacency) {
    std::set<Vertex> targets;
    for (int e = 0; e < 4; ++e)
      targets.insert(static_cast<Vertex>(rng.uniform(25)));
    adj.assign(targets.begin(), targets.end());
  }
  Vertex size = 0;
  const auto match = hopcroft_karp(adjacency, 25, size);
  std::set<Vertex> used;
  Vertex matched = 0;
  for (std::size_t l = 0; l < adjacency.size(); ++l) {
    if (match[l] < 0) continue;
    ++matched;
    EXPECT_TRUE(std::count(adjacency[l].begin(), adjacency[l].end(),
                           match[l]))
        << "matched along a non-edge";
    EXPECT_TRUE(used.insert(match[l]).second) << "right vertex reused";
  }
  EXPECT_EQ(matched, size);
}

void expect_valid_separator(const Graph& graph,
                            const SeparatorPartition& part) {
  // Partition covers every vertex exactly once.
  std::vector<int> seen(static_cast<std::size_t>(graph.num_vertices()), 0);
  for (Vertex v : part.v1) ++seen[static_cast<std::size_t>(v)];
  for (Vertex v : part.v2) ++seen[static_cast<std::size_t>(v)];
  for (Vertex v : part.separator) ++seen[static_cast<std::size_t>(v)];
  for (Vertex v = 0; v < graph.num_vertices(); ++v)
    EXPECT_EQ(seen[static_cast<std::size_t>(v)], 1) << "vertex " << v;
  // Separator condition (1): no V1–V2 edge.
  std::set<Vertex> v2(part.v2.begin(), part.v2.end());
  for (Vertex v : part.v1)
    for (const auto& nb : graph.neighbors(v))
      EXPECT_EQ(v2.count(nb.to), 0u)
          << "edge {" << v << "," << nb.to << "} crosses V1-V2";
}

TEST(Separator, ValidOnGrid) {
  Rng rng(12);
  const Graph graph = make_grid2d(12, 12, rng);
  const SeparatorPartition part = find_separator(graph, rng);
  expect_valid_separator(graph, part);
  // Condition (3): small — a 12x12 grid has a 12-vertex column separator.
  EXPECT_LE(part.separator.size(), 26u);
  // Condition (2): balance.
  EXPECT_GT(part.v1.size(), 40u);
  EXPECT_GT(part.v2.size(), 40u);
}

TEST(Separator, SeparatorNoLargerThanCut) {
  // König: vertex cover <= matching <= cut edges.
  Rng rng(13);
  const Graph graph = make_erdos_renyi(100, 3.0, rng);
  const Bisection bisection = bisect_graph(graph, rng);
  const SeparatorPartition part = vertex_separator(graph, bisection);
  expect_valid_separator(graph, part);
  EXPECT_LE(static_cast<std::int64_t>(part.separator.size()),
            bisection.cut_edges);
}

TEST(Separator, PathSeparatorIsOneVertex) {
  Rng rng(14);
  const Graph graph = make_path(101, rng);
  const SeparatorPartition part = find_separator(graph, rng);
  expect_valid_separator(graph, part);
  EXPECT_EQ(part.separator.size(), 1u);
}

TEST(Separator, DisconnectedGraphMayHaveEmptySeparator) {
  Rng rng(15);
  GraphBuilder builder(20);
  for (Vertex i = 0; i < 9; ++i) {
    builder.add_edge(i, i + 1, 1);
    builder.add_edge(10 + i, 11 + i, 1);
  }
  const Graph graph = std::move(builder).build();
  const SeparatorPartition part = find_separator(graph, rng);
  expect_valid_separator(graph, part);
  EXPECT_EQ(part.separator.size(), 0u);
}

TEST(Separator, PaperFigure1) {
  const Graph graph = make_paper_figure1();
  Rng rng(16);
  const SeparatorPartition part = find_separator(graph, rng);
  expect_valid_separator(graph, part);
  // The designed separator is the single hub vertex 6.
  ASSERT_EQ(part.separator.size(), 1u);
  EXPECT_EQ(part.separator[0], 6);
  EXPECT_EQ(part.v1.size(), 3u);
  EXPECT_EQ(part.v2.size(), 3u);
}

void expect_valid_dissection(const Graph& graph, const Dissection& nd) {
  const Vertex n = graph.num_vertices();
  // perm and iperm are mutually inverse permutations.
  std::vector<bool> hit(static_cast<std::size_t>(n), false);
  for (Vertex v = 0; v < n; ++v) {
    const Vertex image = nd.perm[static_cast<std::size_t>(v)];
    ASSERT_GE(image, 0);
    ASSERT_LT(image, n);
    EXPECT_FALSE(hit[static_cast<std::size_t>(image)]);
    hit[static_cast<std::size_t>(image)] = true;
    EXPECT_EQ(nd.iperm[static_cast<std::size_t>(image)], v);
  }
  // Ranges tile [0, n) and every supernode has one.
  std::vector<int> covered(static_cast<std::size_t>(n), 0);
  for (Snode s = 1; s <= nd.tree.num_supernodes(); ++s) {
    const auto& range = nd.range_of(s);
    EXPECT_LE(range.begin, range.end);
    for (Vertex v = range.begin; v < range.end; ++v)
      ++covered[static_cast<std::size_t>(v)];
  }
  for (Vertex v = 0; v < n; ++v)
    EXPECT_EQ(covered[static_cast<std::size_t>(v)], 1);
}

TEST(NestedDissection, HeightOneIsTrivial) {
  Rng rng(17);
  const Graph graph = make_grid2d(4, 4, rng);
  const Dissection nd = nested_dissection(graph, 1, rng);
  expect_valid_dissection(graph, nd);
  EXPECT_EQ(nd.range_of(1).size(), 16);
}

class NestedDissectionParam
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(NestedDissectionParam, StructureValidOnGrid) {
  const auto [side, height] = GetParam();
  Rng rng(18);
  const Graph graph = make_grid2d(side, side, rng);
  const Dissection nd = nested_dissection(graph, height, rng);
  expect_valid_dissection(graph, nd);
}

INSTANTIATE_TEST_SUITE_P(
    Grids, NestedDissectionParam,
    ::testing::Combine(::testing::Values(4, 8, 12),
                       ::testing::Values(1, 2, 3, 4)));

TEST(NestedDissection, SeparatorOrderedAfterSubtrees) {
  // Every separator supernode's range must come after its children's.
  Rng rng(19);
  const Graph graph = make_grid2d(10, 10, rng);
  const Dissection nd = nested_dissection(graph, 3, rng);
  const EliminationTree& tree = nd.tree;
  for (Snode s = 1; s <= tree.num_supernodes(); ++s)
    for (Snode d : tree.descendants(s))
      EXPECT_GE(nd.range_of(s).begin, nd.range_of(d).end)
          << "separator " << s << " not after descendant " << d;
}

TEST(NestedDissection, CousinBlocksAreEmpty) {
  // The Fig. 1d property: after reordering, the adjacency block between
  // cousin supernodes contains no finite entries.
  Rng rng(20);
  for (int height : {2, 3, 4}) {
    const Graph graph = make_grid2d(12, 12, rng);
    const Dissection nd = nested_dissection(graph, height, rng);
    const Graph reordered = apply_dissection(graph, nd);
    const DistBlock a = to_distance_matrix(reordered);
    const EliminationTree& tree = nd.tree;
    for (Snode i = 1; i <= tree.num_supernodes(); ++i) {
      for (Snode j = 1; j <= tree.num_supernodes(); ++j) {
        if (!tree.is_cousin(i, j)) continue;
        const auto& ri = nd.range_of(i);
        const auto& rj = nd.range_of(j);
        for (Vertex r = ri.begin; r < ri.end; ++r)
          for (Vertex c = rj.begin; c < rj.end; ++c)
            EXPECT_TRUE(is_inf(a.at(r, c)))
                << "cousin block (" << i << "," << j << ") has finite entry";
      }
    }
  }
}

TEST(NestedDissection, SupernodeOfInvertsRanges) {
  Rng rng(21);
  const Graph graph = make_grid2d(8, 8, rng);
  const Dissection nd = nested_dissection(graph, 3, rng);
  for (Vertex v = 0; v < graph.num_vertices(); ++v) {
    const Snode s = nd.supernode_of(v);
    EXPECT_GE(v, nd.range_of(s).begin);
    EXPECT_LT(v, nd.range_of(s).end);
  }
}

TEST(NestedDissection, GridSeparatorScalesLikeSqrtN) {
  Rng rng(22);
  std::vector<double> sizes, seps;
  for (Vertex side : {8, 16, 32}) {
    const Graph graph = make_grid2d(side, side, rng);
    const Dissection nd = nested_dissection(graph, 2, rng);
    sizes.push_back(static_cast<double>(side) * side);
    seps.push_back(static_cast<double>(nd.top_separator_size()));
  }
  // |S| = Θ(√n): doubling the side should roughly double |S|.
  EXPECT_LT(seps[2] / seps[0], 8.0);
  EXPECT_GT(seps[2] / seps[0], 2.0);
  EXPECT_LE(seps[2], 3 * 32);
}

TEST(NestedDissection, PaperFigure1Reordering) {
  const Graph graph = make_paper_figure1();
  Rng rng(23);
  const Dissection nd = nested_dissection(graph, 2, rng);
  expect_valid_dissection(graph, nd);
  // Supernode 3 (the separator) must be vertex 6, placed last.
  EXPECT_EQ(nd.range_of(3).size(), 1);
  EXPECT_EQ(nd.range_of(3).begin, 6);
  EXPECT_EQ(nd.iperm[6], 6);
  EXPECT_EQ(nd.range_of(1).size(), 3);
  EXPECT_EQ(nd.range_of(2).size(), 3);
}

TEST(NestedDissection, TreeGraphDeepDissection) {
  Rng rng(24);
  const Graph graph = make_random_tree(100, rng);
  const Dissection nd = nested_dissection(graph, 4, rng);
  expect_valid_dissection(graph, nd);
  // Trees have O(1) separators at every level.
  for (Snode s = 1; s <= nd.tree.num_supernodes(); ++s)
    if (nd.tree.level_of(s) > 1) {
      EXPECT_LE(nd.range_of(s).size(), 12);
    }
}

TEST(NestedDissection, HandlesGraphSmallerThanTree) {
  // 7 supernodes requested for a 5-vertex path: some must be empty, and
  // the structure must still be valid.
  Rng rng(25);
  const Graph graph = make_path(5, rng);
  const Dissection nd = nested_dissection(graph, 3, rng);
  expect_valid_dissection(graph, nd);
}

}  // namespace
}  // namespace capsp
