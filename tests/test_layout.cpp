// Tests for the supernodal block layout (ApspLayout): rank↔block
// bijection, shapes, and the Sec. 5.4.1 block-size classification.
#include <gtest/gtest.h>

#include <set>

#include "core/layout.hpp"
#include "graph/generators.hpp"
#include "machine/machine.hpp"
#include "partition/nested_dissection.hpp"

namespace capsp {
namespace {

Dissection grid_dissection(int height, Vertex side = 12) {
  Rng rng(5);
  const Graph graph = make_grid2d(side, side, rng);
  Rng nd_rng(6);
  return nested_dissection(graph, height, nd_rng);
}

TEST(ApspLayout, RankBlockBijection) {
  for (int height : {1, 2, 3, 4}) {
    const Dissection nd = grid_dissection(height);
    const ApspLayout layout(nd);
    const Snode n_sup = layout.grid_side();
    EXPECT_EQ(n_sup, (1 << height) - 1);
    EXPECT_EQ(layout.num_ranks(), static_cast<int>(n_sup) * n_sup);
    std::set<RankId> seen;
    for (Snode i = 1; i <= n_sup; ++i) {
      for (Snode j = 1; j <= n_sup; ++j) {
        const RankId rank = layout.rank_of(i, j);
        EXPECT_GE(rank, 0);
        EXPECT_LT(rank, layout.num_ranks());
        EXPECT_TRUE(seen.insert(rank).second);
        EXPECT_EQ(layout.block_of(rank), (std::pair<Snode, Snode>{i, j}));
      }
    }
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(layout.num_ranks()));
  }
}

TEST(ApspLayout, ShapesMatchRanges) {
  const Dissection nd = grid_dissection(3);
  const ApspLayout layout(nd);
  for (Snode i = 1; i <= layout.grid_side(); ++i) {
    EXPECT_EQ(layout.size_of(i), nd.range_of(i).size());
    for (Snode j = 1; j <= layout.grid_side(); ++j) {
      const auto [rows, cols] = layout.block_shape(i, j);
      EXPECT_EQ(rows, nd.range_of(i).size());
      EXPECT_EQ(cols, nd.range_of(j).size());
    }
  }
}

TEST(ApspLayout, BlockSizeClassesOfSection541) {
  // (1) leaf diagonal blocks O(n²/p); (2) leaf×separator panels
  // O(n|S|/√p); (3) separator×separator blocks O(|S|²).
  const Dissection nd = grid_dissection(3, 16);
  const ApspLayout layout(nd);
  const EliminationTree& tree = layout.tree();
  const double n = 256;
  const double sqrt_p = layout.grid_side();
  Vertex s_max = 0;
  for (Snode s = 1; s <= layout.grid_side(); ++s)
    if (tree.level_of(s) > 1) s_max = std::max(s_max, layout.size_of(s));
  for (Snode i = 1; i <= layout.grid_side(); ++i) {
    for (Snode j = 1; j <= layout.grid_side(); ++j) {
      const auto [rows, cols] = layout.block_shape(i, j);
      const double size = static_cast<double>(rows) * cols;
      const bool i_leaf = tree.level_of(i) == 1;
      const bool j_leaf = tree.level_of(j) == 1;
      if (i_leaf && j_leaf) {
        EXPECT_LE(size, 5 * (2 * n / sqrt_p) * (2 * n / sqrt_p));
      } else if (!i_leaf && !j_leaf) {
        EXPECT_LE(size, static_cast<double>(s_max) * s_max);
      }
    }
  }
}

TEST(ApspLayout, InvalidLabelsRejected) {
  const Dissection nd = grid_dissection(2);
  const ApspLayout layout(nd);
  EXPECT_THROW(layout.rank_of(0, 1), check_error);
  EXPECT_THROW(layout.rank_of(1, 4), check_error);
  EXPECT_THROW(layout.block_of(-1), check_error);
  EXPECT_THROW(layout.block_of(9), check_error);
  EXPECT_THROW(layout.range_of(0), check_error);
}

TEST(Machine, TrafficRecordingMatchesVolumes) {
  Machine machine(3);
  machine.enable_traffic_recording(true);
  machine.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 0, std::vector<Dist>{1, 2, 3});
      comm.send(2, 0, std::vector<Dist>{4});
    } else {
      comm.recv(0, 0);
      if (comm.rank() == 1) comm.send(2, 1, std::vector<Dist>{5, 6});
      if (comm.rank() == 2) comm.recv(1, 1);
    }
  });
  const TrafficMatrix& traffic = machine.traffic();
  ASSERT_EQ(traffic.num_ranks, 3);
  EXPECT_EQ(traffic.words_between(0, 1), 3);
  EXPECT_EQ(traffic.words_between(0, 2), 1);
  EXPECT_EQ(traffic.words_between(1, 2), 2);
  EXPECT_EQ(traffic.words_between(2, 1), 0);
  EXPECT_EQ(traffic.messages_between(0, 1), 1);
  std::int64_t total = 0;
  for (RankId s = 0; s < 3; ++s)
    for (RankId d = 0; d < 3; ++d) total += traffic.words_between(s, d);
  EXPECT_EQ(total, machine.report().total_words);
}

TEST(Machine, TrafficRecordingOffByDefault) {
  Machine machine(2);
  machine.run([](Comm& comm) {
    if (comm.rank() == 0) comm.send(1, 0, std::vector<Dist>{1});
    if (comm.rank() == 1) comm.recv(0, 0);
  });
  EXPECT_EQ(machine.traffic().num_ranks, 0);
  EXPECT_TRUE(machine.traffic().words.empty());
}

}  // namespace
}  // namespace capsp
