// Tests for the binary distance-block cache format.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "semiring/block_io.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace capsp {
namespace {

DistBlock random_block(std::int64_t rows, std::int64_t cols,
                       std::uint64_t seed) {
  Rng rng(seed);
  DistBlock block(rows, cols);
  for (auto& v : block.data())
    v = rng.bernoulli(0.1) ? kInf : rng.uniform_real(-100, 100);
  return block;
}

TEST(BlockIo, StreamRoundTrip) {
  const DistBlock block = random_block(9, 13, 1);
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  write_block(stream, block);
  EXPECT_EQ(read_block(stream), block);
}

TEST(BlockIo, RoundTripPreservesInfinities) {
  DistBlock block(3, 3);
  block.zero_diagonal();
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  write_block(stream, block);
  const DistBlock loaded = read_block(stream);
  EXPECT_TRUE(is_inf(loaded.at(0, 1)));
  EXPECT_EQ(loaded.at(1, 1), 0);
}

TEST(BlockIo, EmptyBlockRoundTrip) {
  const DistBlock block(0, 7);
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  write_block(stream, block);
  const DistBlock loaded = read_block(stream);
  EXPECT_EQ(loaded.rows(), 0);
  EXPECT_EQ(loaded.cols(), 7);
}

TEST(BlockIo, FileRoundTrip) {
  const DistBlock block = random_block(20, 20, 2);
  const std::string path = ::testing::TempDir() + "/capsp_block_io.dist";
  save_block(path, block);
  EXPECT_EQ(load_block(path), block);
  std::remove(path.c_str());
}

TEST(BlockIo, ZeroByZeroRoundTrip) {
  const DistBlock block(0, 0);
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  write_block(stream, block);
  // magic + rows + cols, no payload
  EXPECT_EQ(stream.str().size(), 8u + 2 * sizeof(std::int64_t));
  const DistBlock loaded = read_block(stream);
  EXPECT_EQ(loaded.rows(), 0);
  EXPECT_EQ(loaded.cols(), 0);
}

TEST(BlockIo, TruncatedMagicRejected) {
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  stream.write("CAPS", 4);  // EOF mid-magic
  EXPECT_THROW(read_block(stream), check_error);
}

TEST(BlockIo, TruncatedHeaderRejected) {
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  stream.write("CAPSPDB1", 8);
  const std::int64_t rows = 3;
  stream.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
  // cols missing entirely
  EXPECT_THROW(read_block(stream), check_error);
}

TEST(BlockIo, ReadExactBytesReportsShortfall) {
  std::stringstream stream(std::string("abc"),
                           std::ios::in | std::ios::binary);
  char buffer[8];
  try {
    read_exact_bytes(stream, buffer, 8, "probe");
    FAIL() << "expected a truncation CHECK";
  } catch (const check_error& e) {
    EXPECT_NE(std::string(e.what()).find("probe"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos);
  }
}

TEST(BlockIo, BadMagicRejected) {
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  stream.write("NOTCAPSP", 8);
  EXPECT_THROW(read_block(stream), check_error);
}

TEST(BlockIo, TruncatedPayloadRejected) {
  const DistBlock block = random_block(6, 6, 3);
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  write_block(stream, block);
  std::string bytes = stream.str();
  bytes.resize(bytes.size() - 16);  // chop two doubles
  std::stringstream truncated(bytes,
                              std::ios::in | std::ios::binary);
  EXPECT_THROW(read_block(truncated), check_error);
}

TEST(BlockIo, TrailingGarbageRejected) {
  const DistBlock block = random_block(2, 2, 4);
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  write_block(stream, block);
  stream.write("junk", 4);
  EXPECT_THROW(read_block(stream), check_error);
}

TEST(BlockIo, AbsurdDimensionsRejected) {
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  stream.write("CAPSPDB1", 8);
  const std::int64_t rows = std::int64_t{1} << 40, cols = 2;
  stream.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
  stream.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
  EXPECT_THROW(read_block(stream), check_error);
}

}  // namespace
}  // namespace capsp
