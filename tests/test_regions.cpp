// Tests of the region decomposition and the computing-unit → processor
// map: these verify the paper's Lemmas 5.1-5.4 and Corollary 5.5
// *exhaustively* for every tree height the benches use (h <= 7, i.e.
// p <= 16129), so the one-to-one mapping claim is machine-checked, not
// just trusted.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/regions.hpp"
#include "graph/generators.hpp"
#include "partition/nested_dissection.hpp"

namespace capsp {
namespace {

class RegionsParam : public ::testing::TestWithParam<int> {};

TEST_P(RegionsParam, RegionsAreDisjointAndCoverRl) {
  const EliminationTree tree(GetParam());
  for (int l = 1; l <= tree.height(); ++l) {
    const auto r1 = region_r1(tree, l);
    const auto r2 = region_r2(tree, l);
    const auto r3 = region_r3(tree, l);
    const auto r4 = region_r4(tree, l);
    std::set<BlockId> all;
    auto insert_disjoint = [&](const std::vector<BlockId>& region,
                               const char* name) {
      for (const auto& block : region)
        EXPECT_TRUE(all.insert(block).second)
            << name << " overlaps at (" << block.i << "," << block.j
            << "), l=" << l;
    };
    insert_disjoint(r1, "R1");
    insert_disjoint(r2, "R2");
    insert_disjoint(r3, "R3");
    insert_disjoint(r4, "R4");

    // Union must equal R_l = ∪_k related(k) × related(k).
    std::set<BlockId> expected;
    for (Snode k : tree.level_set(l)) {
      std::vector<Snode> members{k};
      for (Snode d : tree.descendants(k)) members.push_back(d);
      for (Snode a : tree.ancestors(k)) members.push_back(a);
      for (Snode i : members)
        for (Snode j : members) expected.insert({i, j});
    }
    EXPECT_EQ(all, expected) << "level " << l;
  }
}

TEST_P(RegionsParam, R1IsTheLevelDiagonal) {
  const EliminationTree tree(GetParam());
  for (int l = 1; l <= tree.height(); ++l) {
    const auto r1 = region_r1(tree, l);
    EXPECT_EQ(r1.size(), static_cast<std::size_t>(tree.level_size(l)));
    for (const auto& block : r1) {
      EXPECT_EQ(block.i, block.j);
      EXPECT_EQ(tree.level_of(block.i), l);
    }
  }
}

TEST_P(RegionsParam, R2BlocksArePanels) {
  const EliminationTree tree(GetParam());
  for (int l = 1; l <= tree.height(); ++l) {
    for (const auto& block : region_r2(tree, l)) {
      const bool row_panel = tree.level_of(block.i) == l &&
                             tree.related(block.i, block.j) &&
                             block.i != block.j;
      const bool col_panel = tree.level_of(block.j) == l &&
                             tree.related(block.i, block.j) &&
                             block.i != block.j;
      EXPECT_TRUE(row_panel || col_panel)
          << "(" << block.i << "," << block.j << ") l=" << l;
    }
  }
}

TEST_P(RegionsParam, R3BlocksHaveExactlyOnePivot) {
  // |(A(i)∪D(i)) ∩ (A(j)∪D(j)) ∩ Q_l| = 1 for every R³ block (Sec. 5.2.1).
  const EliminationTree tree(GetParam());
  for (int l = 1; l <= tree.height(); ++l) {
    for (const auto& block : region_r3(tree, l)) {
      int count = 0;
      Snode pivot = 0;
      for (Snode k : tree.level_set(l)) {
        const bool i_rel = (block.i == k) || tree.related(block.i, k);
        const bool j_rel = (block.j == k) || tree.related(block.j, k);
        const bool has_desc_side = tree.is_descendant(block.i, k) ||
                                   tree.is_descendant(block.j, k);
        if (i_rel && j_rel && has_desc_side) {
          ++count;
          pivot = k;
        }
      }
      EXPECT_EQ(count, 1) << "(" << block.i << "," << block.j << ")";
      EXPECT_EQ(r3_pivot(tree, l, block.i, block.j), pivot);
    }
  }
}

TEST_P(RegionsParam, R4BlocksAreAncestorPairs) {
  const EliminationTree tree(GetParam());
  for (int l = 1; l <= tree.height(); ++l) {
    for (const auto& block : region_r4(tree, l)) {
      EXPECT_GT(tree.level_of(block.i), l);
      EXPECT_GT(tree.level_of(block.j), l);
      EXPECT_TRUE(tree.related(block.i, block.j));
      // Both are ancestors of a common level-l pivot.
      bool found = false;
      for (Snode k : tree.level_set(l))
        found |= (tree.is_ancestor(block.i, k) &&
                  tree.is_ancestor(block.j, k));
      EXPECT_TRUE(found);
    }
  }
}

TEST_P(RegionsParam, Lemma52UnitCountIsOofP) {
  // The number of computing units never exceeds p = N² (Lemma 5.2), so a
  // one-to-one unit→processor mapping exists.
  const EliminationTree tree(GetParam());
  const std::int64_t p = static_cast<std::int64_t>(tree.num_supernodes()) *
                         tree.num_supernodes();
  for (int l = 1; l <= tree.height(); ++l) {
    const auto units = r4_units(tree, l);
    EXPECT_EQ(static_cast<std::int64_t>(units.size()), r4_unit_count(tree, l));
    EXPECT_LE(static_cast<std::int64_t>(units.size()), p);
  }
}

TEST_P(RegionsParam, Lemma53SubsetUnitCounts) {
  // Each subset R⁴(a,c) needs exactly 2^(h-l) units, less than √p.
  const EliminationTree tree(GetParam());
  const int h = tree.height();
  for (int l = 1; l <= h; ++l) {
    std::map<std::pair<int, int>, int> per_subset;
    for (const auto& unit : r4_units(tree, l))
      ++per_subset[{tree.level_of(unit.i), tree.level_of(unit.j)}];
    for (const auto& [subset, count] : per_subset) {
      EXPECT_EQ(count, 1 << (h - l))
          << "subset (" << subset.first << "," << subset.second << ")";
      EXPECT_LE(count, tree.num_supernodes());
    }
    // Subset count < √p (proof of Lemma 5.3).
    EXPECT_LT(per_subset.size(),
              static_cast<std::size_t>(tree.num_supernodes()) + 1);
  }
}

TEST_P(RegionsParam, Lemma54RowMapIsInjectiveAndInRange) {
  const EliminationTree tree(GetParam());
  const int h = tree.height();
  for (int l = 1; l < h; ++l) {
    std::set<Snode> rows;
    for (int a = l + 1; a <= h; ++a) {
      for (int c = a; c <= h; ++c) {
        const Snode f = r4_worker_row(tree, l, a, c);
        EXPECT_GE(f, 1);
        EXPECT_LE(f, tree.num_supernodes());
        EXPECT_TRUE(rows.insert(f).second)
            << "row collision f=" << f << " at (a=" << a << ",c=" << c
            << "), l=" << l;
      }
    }
  }
}

TEST_P(RegionsParam, Corollary55MappingIsOneToOne) {
  // The full unit→processor map is injective: Lemma 5.1's precondition.
  const EliminationTree tree(GetParam());
  for (int l = 1; l <= tree.height(); ++l) {
    std::set<std::pair<Snode, Snode>> workers;
    for (const auto& unit : r4_units(tree, l)) {
      EXPECT_TRUE(workers.insert({unit.f, unit.g}).second)
          << "two units share worker P(" << unit.f << "," << unit.g
          << ") at level " << l;
    }
  }
}

TEST_P(RegionsParam, UnitsMatchBlockPivotStructure) {
  // Per block (i,j): units are exactly {(i,j,k) : k ∈ Q_l ∩ D(i)}, and the
  // unit count is 2^(a-l) (the paper's per-block census).
  const EliminationTree tree(GetParam());
  for (int l = 1; l <= tree.height(); ++l) {
    std::map<BlockId, std::set<Snode>> pivots_by_block;
    for (const auto& unit : r4_units(tree, l)) {
      EXPECT_EQ(tree.ancestor_at_level(unit.k, tree.level_of(unit.i)),
                unit.i);
      EXPECT_EQ(tree.ancestor_at_level(unit.k, tree.level_of(unit.j)),
                unit.j);
      EXPECT_LE(tree.level_of(unit.i), tree.level_of(unit.j));
      pivots_by_block[{unit.i, unit.j}].insert(unit.k);
    }
    for (const auto& [block, pivots] : pivots_by_block) {
      const int a = tree.level_of(block.i);
      EXPECT_EQ(pivots.size(), static_cast<std::size_t>(1) << (a - l));
      const auto [begin, end] = tree.descendant_range_at_level(block.i, l);
      for (Snode k = begin; k < end; ++k) EXPECT_TRUE(pivots.count(k));
    }
  }
}

TEST_P(RegionsParam, WorkerColumnIsIndexWithinLevel) {
  const EliminationTree tree(GetParam());
  for (int l = 1; l <= tree.height(); ++l) {
    Snode expected = 1;
    for (Snode k : tree.level_set(l))
      EXPECT_EQ(r4_worker_col(tree, l, k), expected++);
  }
}

TEST_P(RegionsParam, TopLevelHasNoR4) {
  const EliminationTree tree(GetParam());
  EXPECT_TRUE(region_r4(tree, tree.height()).empty());
  EXPECT_TRUE(r4_units(tree, tree.height()).empty());
}

INSTANTIATE_TEST_SUITE_P(Heights, RegionsParam, ::testing::Range(1, 8));

TEST(Regions, Figure3bLevel2Example) {
  // The paper's Fig. 3b: 4-level tree, l = 2.  Q_2 = {9..12}.
  const EliminationTree tree(4);
  const auto r1 = region_r1(tree, 2);
  EXPECT_EQ(r1.size(), 4u);
  // R² of pivot 9 contains panels to its leaves 1,2 and ancestors 13,15.
  const auto r2 = region_r2(tree, 2);
  auto has = [&](const std::vector<BlockId>& region, Snode i, Snode j) {
    return std::find(region.begin(), region.end(), BlockId{i, j}) !=
           region.end();
  };
  EXPECT_TRUE(has(r2, 1, 9));
  EXPECT_TRUE(has(r2, 13, 9));
  EXPECT_TRUE(has(r2, 15, 9));
  EXPECT_TRUE(has(r2, 9, 2));
  EXPECT_FALSE(has(r2, 3, 9));  // leaf 3 is a cousin of 9
  // R³ contains leaf×ancestor and leaf×leaf pairs under the same pivot.
  const auto r3 = region_r3(tree, 2);
  EXPECT_TRUE(has(r3, 1, 2));
  EXPECT_TRUE(has(r3, 1, 13));
  EXPECT_TRUE(has(r3, 15, 2));
  EXPECT_FALSE(has(r3, 1, 3));   // cousins: not updated at l=2
  EXPECT_FALSE(has(r3, 13, 15)); // ancestor pair: that's R4
  // R⁴ = ancestor pairs {13,14,15} that share level-2 descendants.
  const auto r4 = region_r4(tree, 2);
  EXPECT_TRUE(has(r4, 13, 13));
  EXPECT_TRUE(has(r4, 13, 15));
  EXPECT_TRUE(has(r4, 15, 13));
  EXPECT_TRUE(has(r4, 15, 15));
  EXPECT_FALSE(has(r4, 13, 14));  // 13 and 14 share no common descendant
}

TEST(Regions, UnitCountFormulaMatchesLemma52Closed) {
  // Closed form: Σ_{a=l+1}^{h} (h-a+1)·2^(h-l) for the computed half.
  const EliminationTree tree(6);
  for (int l = 1; l <= 6; ++l) {
    std::int64_t closed = 0;
    for (int a = l + 1; a <= 6; ++a) closed += (6 - a + 1) * (1 << (6 - l));
    EXPECT_EQ(r4_unit_count(tree, l), closed);
  }
}

}  // namespace
}  // namespace capsp
