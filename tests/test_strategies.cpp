// Tests for the scheduling-strategy and collective-algorithm ablation
// knobs: every combination must compute the same (correct) distances,
// and the measured costs must be ordered the way Sec. 5.2.2 argues —
// that ordering is the paper's core contribution, so it is asserted
// here, not just benchmarked.
#include <gtest/gtest.h>

#include "baseline/reference.hpp"
#include "core/sparse_apsp.hpp"
#include "graph/generators.hpp"
#include "machine/collectives.hpp"

namespace capsp {
namespace {

void expect_apsp_eq(const DistBlock& got, const DistBlock& want) {
  ASSERT_EQ(got.rows(), want.rows());
  for (std::int64_t r = 0; r < got.rows(); ++r)
    for (std::int64_t c = 0; c < got.cols(); ++c) {
      if (is_inf(want.at(r, c))) {
        ASSERT_TRUE(is_inf(got.at(r, c))) << r << "," << c;
      } else {
        ASSERT_NEAR(got.at(r, c), want.at(r, c), 1e-9) << r << "," << c;
      }
    }
}

using StrategyCase = std::tuple<R4Strategy, CollectiveAlgorithm, int>;

class StrategyParam : public ::testing::TestWithParam<StrategyCase> {};

TEST_P(StrategyParam, AllCombinationsMatchOracle) {
  const auto [strategy, collectives, height] = GetParam();
  Rng rng(5);
  const Graph graph = make_grid2d(9, 9, rng);
  const DistBlock want = reference_apsp(graph);
  SparseApspOptions options;
  options.height = height;
  options.r4_strategy = strategy;
  options.collectives = collectives;
  const SparseApspResult got = run_sparse_apsp(graph, options);
  expect_apsp_eq(got.distances, want);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, StrategyParam,
    ::testing::Combine(
        ::testing::Values(R4Strategy::kSequential,
                          R4Strategy::kSharedWorkers, R4Strategy::kOneToOne),
        ::testing::Values(CollectiveAlgorithm::kBinomialTree,
                          CollectiveAlgorithm::kPipelined),
        ::testing::Values(2, 3, 4)));

TEST(Strategies, AllAgreeOnIrregularGraph) {
  Rng rng(6);
  const Graph graph = make_random_geometric(70, 0.2, rng);
  const DistBlock want = reference_apsp(graph);
  for (R4Strategy strategy :
       {R4Strategy::kSequential, R4Strategy::kSharedWorkers,
        R4Strategy::kOneToOne}) {
    SparseApspOptions options;
    options.height = 3;
    options.r4_strategy = strategy;
    const SparseApspResult got = run_sparse_apsp(graph, options);
    expect_apsp_eq(got.distances, want);
  }
}

SparseApspResult run_with(const Graph& graph, int height,
                          R4Strategy strategy,
                          CollectiveAlgorithm collectives =
                              CollectiveAlgorithm::kBinomialTree) {
  SparseApspOptions options;
  options.height = height;
  options.r4_strategy = strategy;
  options.collectives = collectives;
  options.collect_distances = false;
  return run_sparse_apsp(graph, options);
}

TEST(Strategies, OneToOneWinsAtScale) {
  // The heart of the paper: at scale, the one-to-one mapping beats both
  // alternatives in latency.  (At h <= 4 the strawmen are competitive —
  // the asymptotic separation needs 2^(h-1) to dominate the extra
  // broadcast/reduce hops; the ablation bench shows the full picture.)
  Rng rng(7);
  const Graph graph = make_grid2d(16, 16, rng);
  const int h = 5;  // p = 961
  const double l_one =
      run_with(graph, h, R4Strategy::kOneToOne).costs.critical_latency;
  const double l_shared =
      run_with(graph, h, R4Strategy::kSharedWorkers).costs.critical_latency;
  const double l_seq =
      run_with(graph, h, R4Strategy::kSequential).costs.critical_latency;
  EXPECT_LT(l_one, l_shared);
  EXPECT_LT(l_one, l_seq);
}

TEST(Strategies, SequentialGapWidensWithP) {
  // Sequential R⁴ pays Θ(2^(h-l)) messages at level l ⇒ Θ(√p) total; its
  // latency gap to one-to-one must widen as p grows (it may even be
  // negative at tiny p, where fan-out overhead dominates).
  Rng rng(8);
  const Graph graph = make_grid2d(16, 16, rng);
  const double gap_small =
      run_with(graph, 3, R4Strategy::kSequential).costs.critical_latency -
      run_with(graph, 3, R4Strategy::kOneToOne).costs.critical_latency;
  const double gap_large =
      run_with(graph, 5, R4Strategy::kSequential).costs.critical_latency -
      run_with(graph, 5, R4Strategy::kOneToOne).costs.critical_latency;
  EXPECT_GT(gap_large, gap_small + 5);
  EXPECT_GT(gap_large, 0);
}

TEST(Strategies, PipelinedCollectivesTradeLatencyForBandwidth) {
  // Pipelined collectives: strictly more messages at every size; fewer
  // words once groups are large enough for the ring to amortize (h = 5
  // here — at h <= 4 the groups are too small to matter either way).
  Rng rng(9);
  const Graph graph = make_grid2d(20, 20, rng);
  for (int h : {3, 5}) {
    const auto tree_run = run_with(graph, h, R4Strategy::kOneToOne,
                                   CollectiveAlgorithm::kBinomialTree);
    const auto pipe_run = run_with(graph, h, R4Strategy::kOneToOne,
                                   CollectiveAlgorithm::kPipelined);
    EXPECT_GT(pipe_run.costs.critical_latency,
              2 * tree_run.costs.critical_latency)
        << "h=" << h;
    if (h == 5) {
      EXPECT_LT(pipe_run.costs.critical_bandwidth,
                tree_run.costs.critical_bandwidth);
    } else {
      // Small groups: bandwidth within 10% either way.
      EXPECT_NEAR(pipe_run.costs.critical_bandwidth /
                      tree_run.costs.critical_bandwidth,
                  1.0, 0.1);
    }
  }
}

}  // namespace
}  // namespace capsp
