// Tests for the serving chaos machinery (serve/servefault wired through
// serve/snapshot and serve/service): fault-plan grammar and round-trips,
// injector determinism, each fault class observed at the snapshot layer
// (EIO → TileReadError, flip → checksum, EINTR/short absorbed by pread),
// and the service-level tolerance it exists to exercise — retry→success
// round trips, the quarantine enter→probe→exit lifecycle, degraded
// replies that are never wrong answers, the worker watchdog, and
// sanitizer-friendly chaos soaks with eviction churn.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baseline/reference.hpp"
#include "graph/generators.hpp"
#include "serve/resilience.hpp"
#include "serve/servefault.hpp"
#include "serve/service.hpp"
#include "serve/snapshot.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace capsp {
namespace {

using ReadFault = ServeFaultInjector::ReadFault;

struct Fixture {
  Graph graph;
  DistBlock matrix;
  std::shared_ptr<SnapshotReader> reader;
  std::string path;

  ~Fixture() {
    if (!path.empty()) std::remove(path.c_str());
  }
};

/// A solved grid served from a real CAPSPDB2 file with small tiles —
/// file-backed because that is the only backing with IO to fault.
Fixture make_fixture(Vertex side, std::int64_t tile_dim) {
  Fixture f;
  Rng rng(42);
  f.graph = make_grid2d(side, side, rng);
  f.matrix = reference_apsp(f.graph);
  // Pid-unique so parallel ctest processes never truncate each other's
  // live snapshot (that would inject a real, unplanned read fault).
  f.path = ::testing::TempDir() + "/capsp_servefault_" +
           std::to_string(::getpid()) + "_" + std::to_string(side) + "_" +
           std::to_string(tile_dim) + ".snap";
  write_snapshot(f.path, f.matrix, tile_dim);
  f.reader = std::make_shared<SnapshotReader>(f.path);
  return f;
}

std::int64_t counter_of(const MetricsSnapshot& metrics,
                        const std::string& name) {
  const auto it = metrics.find(name);
  return it == metrics.end() ? 0 : it->second.counter;
}

/// Spin until `done` or ~`budget_ms` of wall clock; returns done().
template <typename Fn>
bool wait_until(Fn done, int budget_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(budget_ms);
  while (!done()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

// ---------------------------------------------------------------------------
// ServeFaultPlan grammar

TEST(ServeFaultPlan, ParseRoundTrips) {
  const std::string spec =
      "seed=7,read_error=0.02,eintr=0.03,short=0.03,flip=0.02,"
      "delay=0.04,delay_ms=1,alloc=0.005,bad_tile=5:4,stuck=0@40:0.4";
  const ServeFaultPlan plan = ServeFaultPlan::parse(spec);
  EXPECT_EQ(plan.seed, 7u);
  EXPECT_DOUBLE_EQ(plan.read_error, 0.02);
  EXPECT_DOUBLE_EQ(plan.short_read, 0.03);
  EXPECT_DOUBLE_EQ(plan.delay_ms, 1);
  EXPECT_EQ(plan.bad_tile, 5);
  EXPECT_EQ(plan.bad_tile_fails, 4);
  ASSERT_EQ(plan.stuck.size(), 1u);
  EXPECT_EQ(plan.stuck.at(0).job_index, 40);
  EXPECT_DOUBLE_EQ(plan.stuck.at(0).seconds, 0.4);
  EXPECT_FALSE(plan.empty());
  // to_string() → parse() is the identity on the parsed form.
  EXPECT_EQ(ServeFaultPlan::parse(plan.to_string()).to_string(),
            plan.to_string());
}

TEST(ServeFaultPlan, DefaultIsEmpty) {
  const ServeFaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_FALSE(plan.has_read_faults());
  EXPECT_TRUE(ServeFaultPlan::parse("seed=3").empty());
}

TEST(ServeFaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW(ServeFaultPlan::parse("bogus=1"), check_error);
  EXPECT_THROW(ServeFaultPlan::parse("read_error=1.5"), check_error);
  EXPECT_THROW(ServeFaultPlan::parse("read_error=-0.1"), check_error);
  // Read-fault probabilities are mutually exclusive per attempt, so
  // their sum must stay a probability.
  EXPECT_THROW(ServeFaultPlan::parse("read_error=0.6,flip=0.6"),
               check_error);
  EXPECT_THROW(ServeFaultPlan::parse("bad_tile=5"), check_error);
  EXPECT_THROW(ServeFaultPlan::parse("bad_tile=5:0"), check_error);
  EXPECT_THROW(ServeFaultPlan::parse("stuck=1@2"), check_error);
  // One stick per worker: a duplicate is a spec bug, not a schedule.
  EXPECT_THROW(ServeFaultPlan::parse("stuck=1@2:0.1,stuck=1@3:0.1"),
               check_error);
}

// ---------------------------------------------------------------------------
// ServeFaultInjector

TEST(ServeFaultInjector, DecisionsAreDeterministic) {
  ServeFaultPlan plan;
  plan.seed = 11;
  plan.read_error = 0.2;
  plan.eintr = 0.2;
  plan.flip = 0.2;
  plan.delay = 0.2;
  ServeFaultInjector a(plan);
  ServeFaultInjector b(plan);
  // Same (seed, tile, attempt) → same fate, regardless of which thread
  // or process asks; this is what makes a chaos run replayable.
  for (std::int64_t tile = 0; tile < 8; ++tile)
    for (int attempt = 0; attempt < 32; ++attempt)
      EXPECT_EQ(a.next_read_fault(tile), b.next_read_fault(tile))
          << "tile " << tile << " attempt " << attempt;
}

TEST(ServeFaultInjector, BadTileFailsItsBudgetThenHeals) {
  ServeFaultPlan plan;
  plan.bad_tile = 3;
  plan.bad_tile_fails = 5;
  ServeFaultInjector injector(plan);
  for (int attempt = 0; attempt < 5; ++attempt)
    EXPECT_EQ(injector.next_read_fault(3), ReadFault::kEio);
  EXPECT_EQ(injector.next_read_fault(3), ReadFault::kNone);  // healed
  EXPECT_EQ(injector.next_read_fault(4), ReadFault::kNone);  // never bad
  EXPECT_EQ(injector.counts().eio, 5);
}

TEST(ServeFaultInjector, FlipPayloadFlipsExactlyOneBitDeterministically) {
  ServeFaultPlan plan;
  plan.seed = 5;
  plan.flip = 1.0;
  std::vector<Dist> a(64, 1.5), b(64, 1.5);
  ServeFaultInjector(plan).flip_payload(9, a);
  ServeFaultInjector(plan).flip_payload(9, b);
  EXPECT_EQ(a, b);  // same plan, same tile → same bit
  int changed = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i] != 1.5) ++changed;
  EXPECT_EQ(changed, 1);
  std::vector<Dist> empty;
  ServeFaultInjector(plan).flip_payload(9, empty);  // no-op, no crash
}

// ---------------------------------------------------------------------------
// Snapshot-layer injection: what each fault class looks like to a reader.

TEST(SnapshotInjection, EioBecomesTileReadErrorIo) {
  Fixture f = make_fixture(8, 4);
  ServeFaultPlan plan;
  plan.read_error = 1.0;
  ServeFaultInjector injector(plan);
  f.reader->set_fault_injector(&injector);
  try {
    f.reader->read_tile(0);
    FAIL() << "expected TileReadError";
  } catch (const TileReadError& e) {
    EXPECT_EQ(e.kind(), TileReadError::Kind::kIo);
    EXPECT_EQ(e.tile_id(), 0);
  }
}

TEST(SnapshotInjection, FlipIsCaughtByTheChecksum) {
  Fixture f = make_fixture(8, 4);
  ServeFaultPlan plan;
  plan.flip = 1.0;
  ServeFaultInjector injector(plan);
  f.reader->set_fault_injector(&injector);
  try {
    f.reader->read_tile(2);
    FAIL() << "expected TileReadError";
  } catch (const TileReadError& e) {
    // The flipped bit never reaches a caller as data: the per-tile FNV
    // checksum turns it into a recoverable checksum failure.
    EXPECT_EQ(e.kind(), TileReadError::Kind::kChecksum);
  }
  EXPECT_GE(injector.counts().flips, 1);
}

TEST(SnapshotInjection, AllocFailureIsRecoverable) {
  Fixture f = make_fixture(8, 4);
  ServeFaultPlan plan;
  plan.alloc = 1.0;
  ServeFaultInjector injector(plan);
  f.reader->set_fault_injector(&injector);
  EXPECT_THROW(f.reader->read_tile(1), TileReadError);
}

TEST(SnapshotInjection, EintrAndShortReadsAreTransparent) {
  Fixture f = make_fixture(8, 4);
  const DistBlock clean = f.reader->read_tile(0);
  ServeFaultPlan plan;
  plan.eintr = 0.5;
  plan.short_read = 0.5;  // every attempt draws one of the two
  ServeFaultInjector injector(plan);
  f.reader->set_fault_injector(&injector);
  // The pread layer retries EINTR and finishes short reads, so the read
  // succeeds bit-exactly — these faults cost latency, never answers.
  for (int i = 0; i < 8; ++i) EXPECT_EQ(f.reader->read_tile(0), clean);
  EXPECT_GE(injector.counts().eintr + injector.counts().short_reads, 8);
}

TEST(SnapshotInjection, InMemoryBackingHasNoIoToFault) {
  Rng rng(1);
  const Graph graph = make_grid2d(4, 4, rng);
  SnapshotReader reader(reference_apsp(graph), 4);
  ServeFaultPlan plan;
  plan.read_error = 1.0;
  ServeFaultInjector injector(plan);
  reader.set_fault_injector(&injector);
  EXPECT_NO_THROW(reader.read_tile(0));
  EXPECT_EQ(injector.counts().eio, 0);
}

// ---------------------------------------------------------------------------
// Service-level tolerance.

TEST(ServiceResilience, ChecksumFailureRetriesToSuccess) {
  Fixture f = make_fixture(12, 8);
  // Hunt a seed whose first decision for tile 0 is a flip and whose
  // second is clean: a deterministic corrupt-read → retry → success
  // round trip without touching any other knob.
  ServeFaultPlan plan;
  plan.flip = 0.5;
  for (plan.seed = 1; plan.seed < 4096; ++plan.seed) {
    ServeFaultInjector probe(plan);
    if (probe.next_read_fault(0) == ReadFault::kFlip &&
        probe.next_read_fault(0) == ReadFault::kNone)
      break;
  }
  ASSERT_LT(plan.seed, 4096u) << "no seed found (injector changed?)";

  ServeOptions options;
  options.threads = 1;
  options.fault_injector = std::make_shared<ServeFaultInjector>(plan);
  DistanceService service(f.reader, f.graph, options);
  const DistanceReply reply = service.distance(0, 1);
  EXPECT_EQ(reply.error, ServeError::kOk);
  EXPECT_EQ(reply.distance, f.matrix.at(0, 1));  // bit-exact after retry
  const MetricsSnapshot metrics = service.metrics_snapshot();
  EXPECT_EQ(counter_of(metrics, "serve.fault.checksum"), 1);
  EXPECT_EQ(counter_of(metrics, "serve.retry.success"), 1);
  service.stop();
}

TEST(ServiceResilience, QuarantineLifecycleEnterProbeExit) {
  Fixture f = make_fixture(12, 8);
  // Tile 0 fails its first 8 read attempts: two 2-attempt fetches push it
  // over the threshold into quarantine, background probes burn the rest
  // of the budget, and the tile heals.
  ServeFaultPlan plan;
  plan.bad_tile = 0;
  plan.bad_tile_fails = 8;
  ServeOptions options;
  options.threads = 1;
  options.retry.max_attempts = 2;
  options.retry.backoff_base_ms = 0.05;
  options.quarantine.threshold = 2;
  options.quarantine.cooldown_ms = 5;
  options.maintenance_interval_ms = 2;
  options.fault_injector = std::make_shared<ServeFaultInjector>(plan);
  DistanceService service(f.reader, f.graph, options);

  EXPECT_EQ(service.distance(0, 1).error, ServeError::kDegraded);
  EXPECT_EQ(service.distance(0, 1).error, ServeError::kDegraded);
  QuarantineRegistry::Stats stats = service.quarantine_stats();
  EXPECT_EQ(stats.enters, 1);
  EXPECT_EQ(stats.active, 1);

  // The maintenance thread probes every cooldown until the budget is
  // spent and the tile recovers.
  EXPECT_TRUE(wait_until(
      [&] { return service.quarantine_stats().exits >= 1; }, 5000));
  stats = service.quarantine_stats();
  EXPECT_EQ(stats.active, 0);
  // Healed end-to-end: the answer flows again, bit-exact.
  const DistanceReply reply = service.distance(0, 1);
  EXPECT_EQ(reply.error, ServeError::kOk);
  EXPECT_EQ(reply.distance, f.matrix.at(0, 1));
  EXPECT_EQ(service.health(), HealthState::kOk);
  service.stop();
}

TEST(ServiceResilience, QuarantinedTileDegradesNeverLies) {
  Fixture f = make_fixture(12, 8);
  // One failed 1-attempt fetch quarantines tile 0; the huge cooldown
  // pins it there for the rest of the test.
  ServeFaultPlan plan;
  plan.bad_tile = 0;
  plan.bad_tile_fails = 1000000;
  ServeOptions options;
  options.threads = 1;
  options.retry.max_attempts = 1;
  options.quarantine.threshold = 1;
  options.quarantine.cooldown_ms = 1e9;
  options.fault_injector = std::make_shared<ServeFaultInjector>(plan);
  DistanceService service(f.reader, f.graph, options);

  EXPECT_EQ(service.distance(0, 1).error, ServeError::kDegraded);
  // Blocked fail-fast: no disk IO, still a structured reply.
  EXPECT_EQ(service.distance(0, 1).error, ServeError::kDegraded);
  EXPECT_GE(counter_of(service.metrics_snapshot(),
                       "serve.quarantine.blocked"),
            1);
  // Paths and k-nearest that need the dark tile degrade whole — a partial
  // or wrong answer never leaks out.
  const PathReply path = service.shortest_path(0, 1);
  EXPECT_EQ(path.error, ServeError::kDegraded);
  EXPECT_TRUE(path.path.empty());
  const KNearestReply near = service.k_nearest(0, 4);
  EXPECT_EQ(near.error, ServeError::kDegraded);
  EXPECT_TRUE(near.nearest.empty());
  // Answers not touching the quarantined tile still flow, bit-exact.
  const Vertex far = f.graph.num_vertices() - 1;
  const DistanceReply reply = service.distance(far, far - 1);
  EXPECT_EQ(reply.error, ServeError::kOk);
  EXPECT_EQ(reply.distance, f.matrix.at(far, far - 1));
  EXPECT_EQ(service.health(), HealthState::kDegraded);
  service.stop();
}

TEST(ServiceResilience, WatchdogReplacesStuckWorker) {
  Fixture f = make_fixture(8, 4);
  ServeFaultPlan plan = ServeFaultPlan::parse("stuck=0@0:0.2");
  ServeOptions options;
  options.threads = 1;
  options.stuck_worker_ms = 40;
  options.maintenance_interval_ms = 5;
  options.fault_injector = std::make_shared<ServeFaultInjector>(plan);
  DistanceService service(f.reader, f.graph, options);

  // The lone worker wedges on its first job for 200 ms; the watchdog
  // notices at 40 ms and spawns a replacement, so capacity recovers
  // before the wedge resolves.  The wedged job itself still completes.
  const DistanceReply reply = service.distance(0, 1);
  EXPECT_EQ(reply.error, ServeError::kOk);
  EXPECT_EQ(reply.distance, f.matrix.at(0, 1));
  EXPECT_TRUE(wait_until(
      [&] { return service.worker_stats().replaced >= 1; }, 5000));
  EXPECT_GE(counter_of(service.metrics_snapshot(), "serve.worker.stuck"),
            1);
  // The replacement serves.
  EXPECT_EQ(service.distance(1, 2).error, ServeError::kOk);
  service.stop();
}

TEST(ServiceResilienceDeathTest, ResilienceOffIsFailStop) {
  // The pre-resilience contract: --no-resilience restores fail-stop
  // semantics, so a read failure escapes the worker and takes the
  // process down instead of being retried or degraded.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Fixture f = make_fixture(8, 4);
  EXPECT_DEATH(
      {
        ServeFaultPlan plan;
        plan.read_error = 1.0;
        ServeOptions options;
        options.threads = 1;
        options.resilience = false;
        options.fault_injector = std::make_shared<ServeFaultInjector>(plan);
        DistanceService service(f.reader, f.graph, options);
        service.distance(0, 1);
      },
      "injected EIO");
}

// ---------------------------------------------------------------------------
// Soaks for the sanitizer matrix (ASan/UBSan/TSan in CI).

/// Concurrent clients under a mixed plan; every ok answer is checked
/// bit-exact against the matrix.  `cache_bytes` far below the matrix size
/// keeps eviction churning while quarantine and probes race it.
void chaos_soak(std::int64_t cache_bytes, const std::string& plan_spec,
                int clients, int queries_per_client) {
  Fixture f = make_fixture(12, 8);
  ServeOptions options;
  options.threads = 4;
  options.cache_bytes = cache_bytes;
  options.retry.backoff_base_ms = 0.05;
  options.quarantine.cooldown_ms = 5;
  options.maintenance_interval_ms = 2;
  options.stuck_worker_ms = 20;
  options.fault_injector =
      std::make_shared<ServeFaultInjector>(ServeFaultPlan::parse(plan_spec));
  DistanceService service(f.reader, f.graph, options);

  std::atomic<std::int64_t> wrong{0}, ok{0};
  std::vector<std::thread> pool;
  for (int c = 0; c < clients; ++c) {
    pool.emplace_back([&, c] {
      Rng rng(static_cast<std::uint64_t>(c) * 7919 + 3);
      const auto n = static_cast<std::uint64_t>(f.graph.num_vertices());
      for (int i = 0; i < queries_per_client; ++i) {
        const auto u = static_cast<Vertex>(rng.uniform(n));
        const auto v = static_cast<Vertex>(rng.uniform(n));
        const DistanceReply reply = service.distance(u, v);
        if (reply.error != ServeError::kOk) continue;
        ok.fetch_add(1, std::memory_order_relaxed);
        if (reply.distance != f.matrix.at(u, v))
          wrong.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(wrong.load(), 0);
  EXPECT_GT(ok.load(), 0);
  service.stop();
}

TEST(ChaosSoak, MixedFaultsEveryOkAnswerBitExact) {
  chaos_soak(/*cache_bytes=*/1 << 20,
             "seed=5,read_error=0.05,eintr=0.05,short=0.05,flip=0.05,"
             "delay=0.02,delay_ms=1,alloc=0.02,bad_tile=5:30,"
             "stuck=1@3:0.06",
             /*clients=*/8, /*queries_per_client=*/400);
}

TEST(ChaosSoak, EvictionRacesQuarantineAndReprobe) {
  // A cache of a few tiles forces constant eviction while tile 5 cycles
  // through quarantine and re-probe — the TSan prey: cache put/evict
  // racing probe reads and ledger updates.
  chaos_soak(/*cache_bytes=*/4096,
             "seed=9,read_error=0.08,flip=0.05,bad_tile=5:60",
             /*clients=*/8, /*queries_per_client=*/400);
}

}  // namespace
}  // namespace capsp
