// Empirical validation of the paper's cost claims (Sec. 5.4, Table 2, and
// the Sec. 6 lower bounds) on the metered machine.  These tests assert
// *shapes* — growth rates, orderings, decompositions — not absolute
// constants, mirroring how EXPERIMENTS.md reads the bench output.
#include <gtest/gtest.h>

#include <cmath>

#include "baseline/dc_apsp.hpp"
#include "baseline/fw2d.hpp"
#include "core/sparse_apsp.hpp"
#include "graph/generators.hpp"
#include "util/fit.hpp"

namespace capsp {
namespace {

SparseApspResult run_sparse(const Graph& graph, int height) {
  SparseApspOptions options;
  options.height = height;
  options.collect_distances = false;
  return run_sparse_apsp(graph, options);
}

TEST(Costs, Theorem57LatencyIsPolylogarithmic) {
  // L = O(log² p): per-level latency must be O(log p) = O(h), so the total
  // over h levels is O(h²).  Fit L against h² and require that the
  // normalized ratio stays flat (within 2x) while p grows 25x.
  Rng rng(1);
  const Graph graph = make_grid2d(20, 20, rng);
  std::vector<double> ratio;
  for (int h : {2, 3, 4}) {
    const auto result = run_sparse(graph, h);
    ratio.push_back(result.costs.critical_latency /
                    static_cast<double>(h * h));
  }
  for (double r : ratio) {
    EXPECT_GT(r, ratio[0] / 2);
    EXPECT_LT(r, ratio[0] * 2);
  }
}

TEST(Costs, LatencyExponentSeparatesSparseFromDc) {
  // At p <= 256 a pure log²p curve has an apparent power-law exponent of
  // about 2/ln(p) ≈ 0.4-0.5, so raw exponents cannot distinguish log²p
  // from √p at small scale.  The discriminating signal is the *gap*: DC's
  // √p·log²p adds ~0.5 to the exponent.  Assert both the individual
  // ranges and the gap.
  Rng rng(2);
  const Graph graph = make_grid2d(20, 20, rng);
  std::vector<double> p_values, latency;
  for (int h : {2, 3, 4}) {
    const auto result = run_sparse(graph, h);
    p_values.push_back(result.num_ranks);
    latency.push_back(result.costs.critical_latency);
  }
  const LinearFit sparse_fit = power_law_fit(p_values, latency);

  Rng rng2(3);
  const Graph graph2 = make_grid2d(16, 16, rng2);
  std::vector<double> dc_p, dc_latency;
  for (int q : {2, 4, 8}) {
    const auto result = run_dc_apsp(graph2, q);
    dc_p.push_back(q * q);
    dc_latency.push_back(result.costs.critical_latency);
  }
  const LinearFit dc_fit = power_law_fit(dc_p, dc_latency);

  EXPECT_LT(sparse_fit.slope, 0.6) << "sparse latency grows too fast";
  EXPECT_GT(dc_fit.slope, 0.8);  // ~0.5 (√p) + ~0.5 (log²p at small p)
  EXPECT_LT(dc_fit.slope, 1.4);
  EXPECT_GT(dc_fit.slope - sparse_fit.slope, 0.35)
      << "√p separation between DC and sparse latency not visible";
}

TEST(Costs, SparseLatencyBeatsDcByAboutSqrtP) {
  // Table 2 headline: L ratio ≈ √p / polylog, so it must grow with p.
  Rng rng(4);
  const Graph graph = make_grid2d(16, 16, rng);
  const double ratio_small =
      run_dc_apsp(graph, 4).costs.critical_latency /
      run_sparse(graph, 2).costs.critical_latency;  // p = 16 vs 9
  const double ratio_large =
      run_dc_apsp(graph, 16).costs.critical_latency /
      run_sparse(graph, 4).costs.critical_latency;  // p = 256 vs 225
  EXPECT_GT(ratio_large, ratio_small);
  EXPECT_GT(ratio_large, 4.0);
}

TEST(Costs, SparseBandwidthDecreasesWithP) {
  // B = O(n² log²p / p + |S|² log²p): for a grid (|S| small) the first
  // term dominates, so B should clearly fall as p grows.
  Rng rng(5);
  const Graph graph = make_grid2d(24, 24, rng);
  const double b2 = run_sparse(graph, 2).costs.critical_bandwidth;
  const double b4 = run_sparse(graph, 4).costs.critical_bandwidth;
  EXPECT_LT(b4, b2 / 2);
}

TEST(Costs, SparseBandwidthBeatsDcOnSparseGraphs) {
  Rng rng(6);
  const Graph graph = make_grid2d(20, 20, rng);
  const double sparse = run_sparse(graph, 4).costs.critical_bandwidth;
  const double dense = run_dc_apsp(graph, 16).costs.critical_bandwidth;
  EXPECT_LT(sparse, dense / 3);
}

TEST(Costs, MemoryMatchesSection541) {
  // M = O(n²/p + |S|²): the largest block is the max of the leaf block
  // (~(2n/√p)²) and the separator block (|S|²).
  Rng rng(7);
  const Graph graph = make_grid2d(24, 24, rng);
  for (int h : {2, 3, 4}) {
    const auto result = run_sparse(graph, h);
    const double n = graph.num_vertices();
    const double sqrt_p = std::sqrt(static_cast<double>(result.num_ranks));
    const double s = result.separator_size;
    const double bound = 3 * (2 * n / sqrt_p) * (2 * n / sqrt_p) + 3 * s * s;
    EXPECT_LE(static_cast<double>(result.max_block_words), bound)
        << "h=" << h;
  }
}

TEST(Costs, PerLevelLatencyIsLogP) {
  // Lemma 5.6 via a proxy: per-level *max-rank* message volume — each
  // rank participates in O(1) collectives per level, each of depth
  // O(log p).
  Rng rng(8);
  const Graph graph = make_grid2d(20, 20, rng);
  const auto result = run_sparse(graph, 4);
  const int h = result.height;
  const double log_p = std::log2(static_cast<double>(result.num_ranks));
  for (int l = 1; l <= h; ++l) {
    for (const char* region : {"R2", "R3", "R4"}) {
      const std::string phase =
          "L" + std::to_string(l) + "/" + region;
      if (!result.costs.phase_max_rank.count(phase)) continue;
      const auto volume = result.costs.phase_max_rank.at(phase);
      EXPECT_LE(volume.messages, 6 * log_p) << phase;
    }
  }
}

TEST(Costs, Lemma56PerLevelCriticalLatencyDirectly) {
  // Lemma 5.6 measured directly: the critical-path clock is snapshotted
  // after every level; successive differences are the per-level latency
  // costs L_l, each of which must be O(log p).
  Rng rng(15);
  const Graph graph = make_grid2d(20, 20, rng);
  for (int h : {3, 4, 5}) {
    const auto result = run_sparse(graph, h);
    ASSERT_EQ(result.clock_after_level.size(),
              static_cast<std::size_t>(h));
    const double log_p = std::log2(static_cast<double>(result.num_ranks));
    double previous = 0;
    for (int l = 1; l <= h; ++l) {
      const double after =
          result.clock_after_level[static_cast<std::size_t>(l - 1)].latency;
      const double level_latency = after - previous;
      EXPECT_GE(level_latency, 0) << "h=" << h << " l=" << l;
      EXPECT_LE(level_latency, 5 * log_p + 4) << "h=" << h << " l=" << l;
      previous = after;
    }
    // The snapshots must be consistent with the total.
    EXPECT_EQ(result.clock_after_level.back().latency,
              result.costs.critical_latency);
  }
}

TEST(Costs, BandwidthDecompositionByRegion) {
  // Lemmas 5.8/5.9: level-1 R² moves the big leaf diagonal blocks
  // (O(n²/p·log p) words per rank); upper levels move separator-sized
  // blocks.  Check the level-1 R2 volume dominates the top level's R2.
  Rng rng(9);
  const Graph graph = make_grid2d(24, 24, rng);
  const auto result = run_sparse(graph, 3);
  const auto& peak = result.costs.phase_max_rank;
  ASSERT_TRUE(peak.count("L1/R2"));
  ASSERT_TRUE(peak.count("L3/R2"));
  EXPECT_GT(peak.at("L1/R2").words, peak.at("L3/R2").words);
  // Level 1 has no R³ (leaves have no descendants, so R³_1 = ∅ — D(k) is
  // empty); its ancestor-directed traffic is all R⁴.  R³ first appears at
  // level 2.
  EXPECT_FALSE(peak.count("L1/R3"));
  ASSERT_TRUE(peak.count("L1/R4"));
  EXPECT_GT(peak.at("L1/R4").words, 0);
  ASSERT_TRUE(peak.count("L2/R3"));
  EXPECT_GT(peak.at("L2/R3").words, 0);
}

TEST(Costs, R1NeverCommunicates) {
  Rng rng(10);
  const Graph graph = make_grid2d(12, 12, rng);
  const auto result = run_sparse(graph, 3);
  for (const auto& [phase, volume] : result.costs.phase_total) {
    if (phase.find("R1") != std::string::npos) {
      EXPECT_EQ(volume.messages, 0) << phase;
    }
  }
}

TEST(Costs, LowerBoundsRespected) {
  // Sec. 6: B = Ω(n²/p + |S|²) and L = Ω(log² p).  The measured costs
  // must sit above the lower bound (sanity of the metering) and within a
  // polylog factor of it (near-optimality, Table 2's last column).
  Rng rng(11);
  const Graph graph = make_grid2d(24, 24, rng);
  for (int h : {2, 3, 4}) {
    const auto result = run_sparse(graph, h);
    const double n = graph.num_vertices();
    const double p = result.num_ranks;
    const double s = result.separator_size;
    const double log_p = std::log2(p);
    const double bw_lower = n * n / p + s * s;
    const double lat_lower = log_p * log_p;
    EXPECT_GE(result.costs.critical_bandwidth, 0.1 * bw_lower);
    EXPECT_LE(result.costs.critical_bandwidth,
              40 * log_p * log_p * bw_lower);
    EXPECT_GE(result.costs.critical_latency, 0.2 * lat_lower);
    EXPECT_LE(result.costs.critical_latency, 10 * lat_lower);
  }
}

TEST(Costs, BlockCyclicLatencyPenalty) {
  // Sec. 5.1's argument against block-cyclic layouts: more block rows on
  // the same grid force the diagonal owners into sequential broadcasts,
  // inflating latency roughly linearly in blocks_per_dim.
  Rng rng(12);
  const Graph graph = make_grid2d(8, 8, rng);
  const double l_block = run_fw2d(graph, 2, 2).costs.critical_latency;
  const double l_cyclic4 = run_fw2d(graph, 2, 8).costs.critical_latency;
  const double l_cyclic16 = run_fw2d(graph, 2, 32).costs.critical_latency;
  EXPECT_GT(l_cyclic4, 2 * l_block);
  EXPECT_GT(l_cyclic16, 3 * l_cyclic4);
}

TEST(Costs, SeparatorSizeDrivesBandwidth) {
  // Sec. 5.5: everything else fixed, a family with larger separators pays
  // more bandwidth.  Grid (|S| = Θ(√n)) vs Erdős–Rényi (|S| = Θ(n)).
  Rng rng(13);
  const Graph grid = make_grid2d(20, 20, rng);
  const Graph er = make_erdos_renyi(400, 8.0, rng);
  const auto grid_result = run_sparse(grid, 3);
  const auto er_result = run_sparse(er, 3);
  EXPECT_LT(grid_result.separator_size, er_result.separator_size / 2);
  EXPECT_LT(grid_result.costs.critical_bandwidth,
            er_result.costs.critical_bandwidth);
}

TEST(Costs, TotalVolumeBoundedByPTimesCriticalPath) {
  // Internal consistency of the cost model: total volume <= p * per-rank
  // critical values is not guaranteed in general, but total messages must
  // be at least the critical latency, and max-rank volume at most total.
  Rng rng(14);
  const Graph graph = make_grid2d(16, 16, rng);
  const auto result = run_sparse(graph, 3);
  EXPECT_GE(static_cast<double>(result.costs.total_messages),
            result.costs.critical_latency);
  EXPECT_LE(result.costs.max_rank_words, result.costs.total_words);
  EXPECT_GE(result.costs.total_words, result.costs.critical_bandwidth);
}

}  // namespace
}  // namespace capsp
