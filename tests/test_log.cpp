// Tests for the structured logging subsystem (util/log.hpp): level
// filtering with the errors-always-print rule, JSON-lines vs human sink
// formats, per-call-site rate limiting with the drained suppressed
// counter, the injectable clock, thread-context correlation (rank /
// request id / phase), env + flag configuration precedence, and the
// logger↔flight-recorder seam (docs/observability.md).
//
// The Logger is a process-wide singleton, so every test runs under
// LoggerSandbox, which redirects the sink and restores all knobs.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/check.hpp"
#include "util/flightrec.hpp"
#include "util/log.hpp"

namespace capsp {
namespace {

/// Redirects the global logger into a private buffer and restores every
/// knob (level, ring level, json, clock, site limit, sink) on exit.
class LoggerSandbox {
 public:
  LoggerSandbox() {
    Logger& logger = Logger::global();
    level_ = logger.level();
    ring_level_ = logger.ring_level();
    json_ = logger.json();
    limit_ = logger.site_limit_per_second();
    logger.set_sink(&out_);
    logger.set_clock([this] { return clock_; });
  }
  ~LoggerSandbox() {
    Logger& logger = Logger::global();
    logger.set_level(level_);
    logger.set_ring_level(ring_level_);
    logger.set_json(json_);
    logger.set_site_limit_per_second(limit_);
    logger.set_clock(nullptr);
    logger.set_sink(nullptr);
  }

  std::string text() const { return out_.str(); }
  void advance(double seconds) { clock_ += seconds; }

 private:
  std::ostringstream out_;
  double clock_ = 1000.0;  // deterministic "now"
  LogLevel level_;
  LogLevel ring_level_;
  bool json_;
  std::int64_t limit_;
};

int count_lines(const std::string& text) {
  int lines = 0;
  for (const char c : text)
    if (c == '\n') ++lines;
  return lines;
}

// ---------------------------------------------------------------------------
// Levels

TEST(LogLevelNames, RoundTripAndRejection) {
  for (const char* name : {"trace", "debug", "info", "warn", "error",
                           "off"}) {
    EXPECT_STREQ(to_string(log_level_from_string(name)), name);
  }
  EXPECT_THROW(log_level_from_string("verbose"), check_error);
  EXPECT_THROW(log_level_from_string(""), check_error);
}

TEST(Logger, SinkThresholdFiltersBelowLevel) {
  LoggerSandbox sandbox;
  Logger::global().set_level(LogLevel::kInfo);
  CAPSP_LOG(kDebug, "test.debug", {"x", 1});
  CAPSP_LOG(kInfo, "test.info", {"x", 2});
  CAPSP_LOG(kWarn, "test.warn", {"x", 3});
  const std::string text = sandbox.text();
  EXPECT_EQ(text.find("test.debug"), std::string::npos);
  EXPECT_NE(text.find("test.info"), std::string::npos);
  EXPECT_NE(text.find("test.warn"), std::string::npos);
  EXPECT_EQ(count_lines(text), 2);
}

TEST(Logger, ErrorsPrintEvenWhenTheSinkIsOff) {
  LoggerSandbox sandbox;
  Logger::global().set_level(LogLevel::kOff);
  CAPSP_LOG(kWarn, "test.quiet_warn");
  CAPSP_LOG(kError, "test.loud_error", {"what", "boom"});
  const std::string text = sandbox.text();
  EXPECT_EQ(text.find("test.quiet_warn"), std::string::npos);
  EXPECT_NE(text.find("test.loud_error"), std::string::npos);
  EXPECT_NE(text.find("what=boom"), std::string::npos);
}

TEST(Logger, BelowSinkLevelStillReachesTheFlightRecorder) {
  LoggerSandbox sandbox;
  Logger::global().set_level(LogLevel::kOff);
  Logger::global().set_ring_level(LogLevel::kDebug);
  const std::int64_t before = flightrec::stats().recorded;
  CAPSP_LOG(kDebug, "test.ring_only", {"k", 7});
  EXPECT_EQ(sandbox.text(), "");  // sink-silent
  EXPECT_EQ(flightrec::stats().recorded, before + 1);
  const std::string recent = flightrec::recent_events_json(8);
  EXPECT_NE(recent.find("test.ring_only"), std::string::npos);
  EXPECT_NE(recent.find("k=7"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Line formats

TEST(Logger, HumanLineCarriesFieldsAndCallSite) {
  LoggerSandbox sandbox;
  Logger::global().set_level(LogLevel::kInfo);
  CAPSP_LOG(kInfo, "test.human", {"tile", 42}, {"ratio", 0.5},
            {"ok", true}, {"name", "r1"});
  const std::string text = sandbox.text();
  EXPECT_NE(text.find("1000.000000 info test.human"), std::string::npos);
  EXPECT_NE(text.find("tile=42"), std::string::npos);
  EXPECT_NE(text.find("ratio=0.5"), std::string::npos);
  EXPECT_NE(text.find("ok=true"), std::string::npos);
  EXPECT_NE(text.find("name=r1"), std::string::npos);
  EXPECT_NE(text.find("test_log.cpp:"), std::string::npos);
}

TEST(Logger, JsonLinesShape) {
  LoggerSandbox sandbox;
  Logger::global().set_level(LogLevel::kInfo);
  Logger::global().set_json(true);
  CAPSP_LOG(kWarn, "test.json", {"tile", 42}, {"why", "io \"err\""});
  const std::string text = sandbox.text();
  EXPECT_NE(text.find("\"level\":\"warn\""), std::string::npos);
  EXPECT_NE(text.find("\"event\":\"test.json\""), std::string::npos);
  EXPECT_NE(text.find("\"ts\":1000"), std::string::npos);
  EXPECT_NE(text.find("\"tile\":42"), std::string::npos);
  // String values escape through JsonWriter — embedded quotes stay JSON.
  EXPECT_NE(text.find("\"why\":\"io \\\"err\\\"\""), std::string::npos);
  EXPECT_NE(text.find("\"tid\":"), std::string::npos);
  EXPECT_EQ(count_lines(text), 1);
}

// ---------------------------------------------------------------------------
// Context correlation

TEST(Logger, RankRequestAndPhaseContextFlowIntoLines) {
  LoggerSandbox sandbox;
  Logger::global().set_level(LogLevel::kInfo);
  {
    const LogRankScope rank(3);
    const LogRequestScope request(91);
    log_set_phase("L2/R4");
    CAPSP_LOG(kInfo, "test.context");
    log_set_phase("");
  }
  CAPSP_LOG(kInfo, "test.after_scope");
  const std::string text = sandbox.text();
  const std::size_t first = text.find('\n');
  const std::string line1 = text.substr(0, first);
  const std::string line2 = text.substr(first + 1);
  EXPECT_NE(line1.find("rank=3"), std::string::npos);
  EXPECT_NE(line1.find("req=91"), std::string::npos);
  EXPECT_NE(line1.find("phase=L2/R4"), std::string::npos);
  // Scopes restore on exit: the second line carries no stale context.
  EXPECT_EQ(line2.find("rank="), std::string::npos);
  EXPECT_EQ(line2.find("req="), std::string::npos);
  EXPECT_EQ(line2.find("phase="), std::string::npos);
}

TEST(Logger, ScopesNestAndRestoreThePreviousContext) {
  LoggerSandbox sandbox;
  Logger::global().set_level(LogLevel::kInfo);
  const LogRankScope outer(1);
  {
    const LogRankScope inner(2);
    CAPSP_LOG(kInfo, "test.inner");
  }
  CAPSP_LOG(kInfo, "test.outer");
  const std::string text = sandbox.text();
  EXPECT_NE(text.find("test.inner rank=2"), std::string::npos);
  EXPECT_NE(text.find("test.outer rank=1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Rate limiting

TEST(Logger, PerSiteTokenBucketSuppressesAndDrains) {
  LoggerSandbox sandbox;
  Logger::global().set_level(LogLevel::kInfo);
  Logger::global().set_site_limit_per_second(3);
  // One call site throughout: the suppressed counter is per site, so the
  // drain lands on the next event emitted from the SAME CAPSP_LOG line.
  for (int i = 0; i < 11; ++i) {
    if (i == 10) {
      EXPECT_EQ(count_lines(sandbox.text()), 3);
      // A new one-second window opens; the first event through reports
      // how many the bucket swallowed.
      sandbox.advance(1.5);
    }
    CAPSP_LOG(kInfo, "test.flood", {"i", i});
  }
  const std::string text = sandbox.text();
  EXPECT_EQ(count_lines(text), 4);
  EXPECT_NE(text.find("suppressed=7"), std::string::npos);
}

TEST(Logger, RateLimitIsPerCallSite) {
  LoggerSandbox sandbox;
  Logger::global().set_level(LogLevel::kInfo);
  Logger::global().set_site_limit_per_second(1);
  for (int i = 0; i < 5; ++i) CAPSP_LOG(kInfo, "test.site_a");
  for (int i = 0; i < 5; ++i) CAPSP_LOG(kInfo, "test.site_b");
  // One line per site, not one line total.
  const std::string text = sandbox.text();
  EXPECT_NE(text.find("test.site_a"), std::string::npos);
  EXPECT_NE(text.find("test.site_b"), std::string::npos);
  EXPECT_EQ(count_lines(text), 2);
}

// ---------------------------------------------------------------------------
// Configuration

TEST(Logger, ToolFlagOverridesEnvOverridesDefault) {
  LoggerSandbox sandbox;
  // Flag wins over everything.
  ::setenv("CAPSP_LOG_LEVEL", "error", 1);
  log_configure_tool("debug", false, "warn");
  EXPECT_EQ(Logger::global().level(), LogLevel::kDebug);
  // No flag: the environment wins over the tool default.
  log_configure_tool("", false, "warn");
  EXPECT_EQ(Logger::global().level(), LogLevel::kError);
  // Neither: the tool default applies.
  ::unsetenv("CAPSP_LOG_LEVEL");
  log_configure_tool("", false, "warn");
  EXPECT_EQ(Logger::global().level(), LogLevel::kWarn);
  EXPECT_THROW(log_configure_tool("chatty", false, "warn"), check_error);
}

TEST(Logger, ConfigureFromEnvParsesLevelAndJson) {
  LoggerSandbox sandbox;
  ::setenv("CAPSP_LOG_LEVEL", "trace", 1);
  ::setenv("CAPSP_LOG_JSON", "1", 1);
  Logger::global().configure_from_env();
  EXPECT_EQ(Logger::global().level(), LogLevel::kTrace);
  EXPECT_TRUE(Logger::global().json());
  ::setenv("CAPSP_LOG_JSON", "0", 1);
  Logger::global().configure_from_env();
  EXPECT_FALSE(Logger::global().json());
  ::unsetenv("CAPSP_LOG_LEVEL");
  ::unsetenv("CAPSP_LOG_JSON");
}

// ---------------------------------------------------------------------------
// Concurrency smoke (the sanitizer matrix makes this a real test)

TEST(Logger, ConcurrentEmissionFromManyThreadsStaysLineAtomic) {
  LoggerSandbox sandbox;
  Logger::global().set_level(LogLevel::kInfo);
  Logger::global().set_site_limit_per_second(0);  // no throttling
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      const LogRankScope rank(t);
      for (int i = 0; i < kPerThread; ++i)
        CAPSP_LOG(kInfo, "test.concurrent", {"i", i});
    });
  }
  for (std::thread& thread : threads) thread.join();
  const std::string text = sandbox.text();
  EXPECT_EQ(count_lines(text), kThreads * kPerThread);
  // Whole lines only: every line starts with the pinned timestamp.
  std::size_t pos = 0;
  while (pos < text.size()) {
    EXPECT_EQ(text.compare(pos, 5, "1000."), 0) << "torn line at " << pos;
    pos = text.find('\n', pos) + 1;
  }
}

}  // namespace
}  // namespace capsp
