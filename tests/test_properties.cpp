// Property-based and metamorphic tests: mathematical invariants every
// APSP result must satisfy, plus relations between the outputs of
// *transformed* inputs.  These catch whole classes of bugs that direct
// oracle comparison can miss (e.g. an oracle and an implementation that
// are wrong in the same way).
#include <gtest/gtest.h>

#include <numeric>

#include "baseline/dc_apsp.hpp"
#include "baseline/reference.hpp"
#include "core/sparse_apsp.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

namespace capsp {
namespace {

DistBlock sparse_apsp_of(const Graph& graph, int height = 3,
                         std::uint64_t seed = 17) {
  SparseApspOptions options;
  options.height = height;
  options.seed = seed;
  return run_sparse_apsp(graph, options).distances;
}

class ApspProperties : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Graph make_graph() const {
    Rng rng(GetParam());
    switch (GetParam() % 4) {
      case 0: return make_erdos_renyi(48, 3.5, rng);
      case 1: return make_grid2d(7, 7, rng);
      case 2: return make_random_geometric(50, 0.25, rng);
      default: return make_random_tree(52, rng);
    }
  }
};

TEST_P(ApspProperties, DiagonalIsZeroAndMatrixSymmetric) {
  const Graph graph = make_graph();
  const DistBlock d = sparse_apsp_of(graph);
  for (Vertex u = 0; u < graph.num_vertices(); ++u) {
    EXPECT_EQ(d.at(u, u), 0);
    for (Vertex v = 0; v < graph.num_vertices(); ++v)
      EXPECT_EQ(d.at(u, v), d.at(v, u)) << u << "," << v;
  }
}

TEST_P(ApspProperties, TriangleInequality) {
  const Graph graph = make_graph();
  const DistBlock d = sparse_apsp_of(graph);
  const Vertex n = graph.num_vertices();
  Rng rng(GetParam() + 1);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto u = static_cast<Vertex>(rng.uniform(static_cast<std::uint64_t>(n)));
    const auto v = static_cast<Vertex>(rng.uniform(static_cast<std::uint64_t>(n)));
    const auto w = static_cast<Vertex>(rng.uniform(static_cast<std::uint64_t>(n)));
    if (is_inf(d.at(u, w)) || is_inf(d.at(w, v))) continue;
    EXPECT_LE(d.at(u, v), d.at(u, w) + d.at(w, v) + 1e-9)
        << u << "->" << w << "->" << v;
  }
}

TEST_P(ApspProperties, DistanceNeverBelowDirectEdge) {
  const Graph graph = make_graph();
  const DistBlock d = sparse_apsp_of(graph);
  for (Vertex u = 0; u < graph.num_vertices(); ++u)
    for (const auto& nb : graph.neighbors(u))
      EXPECT_LE(d.at(u, nb.to), nb.weight + 1e-12);
}

TEST_P(ApspProperties, FiniteExactlyWithinComponents) {
  const Graph graph = make_graph();
  const DistBlock d = sparse_apsp_of(graph);
  const auto label = connected_components(graph);
  for (Vertex u = 0; u < graph.num_vertices(); ++u)
    for (Vertex v = 0; v < graph.num_vertices(); ++v)
      EXPECT_EQ(!is_inf(d.at(u, v)),
                label[static_cast<std::size_t>(u)] ==
                    label[static_cast<std::size_t>(v)])
          << u << "," << v;
}

TEST_P(ApspProperties, AddingAnEdgeNeverIncreasesDistances) {
  const Graph graph = make_graph();
  const DistBlock before = sparse_apsp_of(graph);
  // Rebuild with one extra random edge.
  Rng rng(GetParam() + 2);
  const Vertex n = graph.num_vertices();
  GraphBuilder builder(n);
  for (Vertex u = 0; u < n; ++u)
    for (const auto& nb : graph.neighbors(u))
      if (u < nb.to) builder.add_edge(u, nb.to, nb.weight);
  const auto a = static_cast<Vertex>(rng.uniform(static_cast<std::uint64_t>(n)));
  const auto b = static_cast<Vertex>(rng.uniform(static_cast<std::uint64_t>(n)));
  if (a == b) return;
  builder.add_edge(a, b, 1.0);
  const Graph augmented = std::move(builder).build();
  const DistBlock after = sparse_apsp_of(augmented);
  for (Vertex u = 0; u < n; ++u)
    for (Vertex v = 0; v < n; ++v)
      EXPECT_LE(after.at(u, v), before.at(u, v) + 1e-9) << u << "," << v;
}

TEST_P(ApspProperties, ScalingWeightsScalesDistances) {
  const Graph graph = make_graph();
  const DistBlock base = sparse_apsp_of(graph);
  constexpr double kScale = 3.0;
  GraphBuilder builder(graph.num_vertices());
  for (Vertex u = 0; u < graph.num_vertices(); ++u)
    for (const auto& nb : graph.neighbors(u))
      if (u < nb.to) builder.add_edge(u, nb.to, nb.weight * kScale);
  const DistBlock scaled = sparse_apsp_of(std::move(builder).build());
  for (Vertex u = 0; u < graph.num_vertices(); ++u)
    for (Vertex v = 0; v < graph.num_vertices(); ++v) {
      if (is_inf(base.at(u, v))) {
        EXPECT_TRUE(is_inf(scaled.at(u, v)));
      } else {
        EXPECT_NEAR(scaled.at(u, v), kScale * base.at(u, v), 1e-6);
      }
    }
}

TEST_P(ApspProperties, VertexRelabelingCommutes) {
  // APSP(permute(G)) == permute(APSP(G)).
  const Graph graph = make_graph();
  const Vertex n = graph.num_vertices();
  Rng rng(GetParam() + 3);
  std::vector<Vertex> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  for (std::size_t i = perm.size(); i > 1; --i)
    std::swap(perm[i - 1], perm[rng.uniform(i)]);
  const DistBlock base = sparse_apsp_of(graph);
  const DistBlock relabeled = sparse_apsp_of(graph.permuted(perm));
  for (Vertex u = 0; u < n; ++u)
    for (Vertex v = 0; v < n; ++v) {
      const Dist want = base.at(u, v);
      const Dist got = relabeled.at(perm[static_cast<std::size_t>(u)],
                                    perm[static_cast<std::size_t>(v)]);
      if (is_inf(want)) {
        EXPECT_TRUE(is_inf(got));
      } else {
        EXPECT_NEAR(got, want, 1e-9);
      }
    }
}

TEST_P(ApspProperties, MachineSizeDoesNotChangeTheAnswer) {
  const Graph graph = make_graph();
  const DistBlock h2 = sparse_apsp_of(graph, 2);
  const DistBlock h3 = sparse_apsp_of(graph, 3);
  const DistBlock h4 = sparse_apsp_of(graph, 4);
  EXPECT_EQ(h2, h3);
  EXPECT_EQ(h3, h4);
}

TEST_P(ApspProperties, PartitionerSeedDoesNotChangeTheAnswer) {
  const Graph graph = make_graph();
  const DistBlock a = sparse_apsp_of(graph, 3, 1);
  const DistBlock b = sparse_apsp_of(graph, 3, 999);
  EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApspProperties,
                         ::testing::Values(11u, 22u, 33u, 44u));

TEST(Fuzz, ManyRandomGraphsAgainstOracle) {
  // Wider randomized sweep with small graphs: shapes, densities, weights.
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    Rng rng(7000 + seed);
    const auto n = static_cast<Vertex>(4 + rng.uniform(28));
    const double degree = rng.uniform_real(1.0, 5.0);
    WeightOptions opts;
    opts.integer = rng.bernoulli(0.5);
    opts.min_weight = rng.bernoulli(0.3) ? 0.0 : 1.0;
    opts.max_weight = opts.min_weight + rng.uniform_real(1.0, 9.0);
    const Graph graph = make_erdos_renyi(n, degree, rng, opts);
    const DistBlock want = reference_apsp(graph);
    const DistBlock got = sparse_apsp_of(graph, 2, seed);
    for (Vertex u = 0; u < n; ++u)
      for (Vertex v = 0; v < n; ++v) {
        if (is_inf(want.at(u, v))) {
          ASSERT_TRUE(is_inf(got.at(u, v))) << "seed " << seed;
        } else {
          ASSERT_NEAR(got.at(u, v), want.at(u, v), 1e-9)
              << "seed " << seed << " (" << u << "," << v << ")";
        }
      }
  }
}

}  // namespace
}  // namespace capsp
