// A user-defined semiring, end to end — the extensibility contract that
// docs/using.md promises.  We define the *minimax* ("smoothest path")
// semiring: ⊕ = min, ⊗ = max, minimizing over paths the largest edge
// weight (the dual of the bottleneck problem), give it a Dijkstra-style
// oracle, and run it through both the sequential kernels and the full
// distributed scheduler.
#include <gtest/gtest.h>

#include <queue>

#include "core/sparse_apsp.hpp"
#include "graph/generators.hpp"
#include "semiring/semirings.hpp"

namespace capsp {
namespace {

/// Minimax: path value = max edge on the path; choose the path minimizing
/// it.  0̄ = +inf (no path), 1̄ = 0 (empty path; weights are >= 0).
struct MinMaxSemiring {
  static constexpr Dist zero() { return kInf; }
  static constexpr Dist one() { return 0; }
  static constexpr Dist plus(Dist a, Dist b) { return a < b ? a : b; }
  static constexpr Dist times(Dist a, Dist b) { return a > b ? a : b; }
  static constexpr bool is_zero(Dist a) { return a == kInf; }
  static constexpr bool improves(Dist candidate, Dist current) {
    return candidate < current;
  }
};

/// Oracle: minimax distances from `source` by a modified Dijkstra.
std::vector<Dist> minimax_sssp(const Graph& graph, Vertex source) {
  std::vector<Dist> best(static_cast<std::size_t>(graph.num_vertices()),
                         kInf);
  best[static_cast<std::size_t>(source)] = 0;
  using Entry = std::pair<Dist, Vertex>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  heap.push({0, source});
  while (!heap.empty()) {
    const auto [b, v] = heap.top();
    heap.pop();
    if (b > best[static_cast<std::size_t>(v)]) continue;
    for (const auto& nb : graph.neighbors(v)) {
      const Dist through = std::max(b, static_cast<Dist>(nb.weight));
      if (through < best[static_cast<std::size_t>(nb.to)]) {
        best[static_cast<std::size_t>(nb.to)] = through;
        heap.push({through, nb.to});
      }
    }
  }
  return best;
}

TEST(CustomSemiring, LawsHold) {
  const std::vector<Dist> values{0, 1, 3.5, 9, kInf};
  for (Dist a : values) {
    EXPECT_EQ(MinMaxSemiring::plus(a, MinMaxSemiring::zero()), a);
    EXPECT_EQ(MinMaxSemiring::times(a, MinMaxSemiring::one()), a);
    EXPECT_EQ(MinMaxSemiring::times(a, MinMaxSemiring::zero()),
              MinMaxSemiring::zero());
    for (Dist b : values)
      for (Dist c : values)
        EXPECT_EQ(
            MinMaxSemiring::times(a, MinMaxSemiring::plus(b, c)),
            MinMaxSemiring::plus(MinMaxSemiring::times(a, b),
                                 MinMaxSemiring::times(a, c)));
  }
}

TEST(CustomSemiring, SequentialFwMatchesOracle) {
  Rng rng(1);
  WeightOptions opts;
  opts.min_weight = 1;
  opts.max_weight = 40;
  const Graph graph = make_erdos_renyi(45, 4.0, rng, opts);
  DistBlock a(graph.num_vertices(), graph.num_vertices(), kInf);
  for (Vertex v = 0; v < graph.num_vertices(); ++v) {
    a.at(v, v) = 0;
    for (const auto& nb : graph.neighbors(v)) a.at(v, nb.to) = nb.weight;
  }
  semiring_fw<MinMaxSemiring>(a);
  for (Vertex s = 0; s < graph.num_vertices(); ++s) {
    const auto oracle = minimax_sssp(graph, s);
    for (Vertex t = 0; t < graph.num_vertices(); ++t)
      ASSERT_EQ(a.at(s, t), oracle[static_cast<std::size_t>(t)])
          << s << "->" << t;
  }
}

TEST(CustomSemiring, DistributedSchedulerRunsIt) {
  // The docs/using.md recipe, verbatim: SemiringKernels::of<MySemiring>()
  // into run_sparse_apsp_semiring.
  Rng rng(2);
  WeightOptions opts;
  opts.min_weight = 1;
  opts.max_weight = 25;
  const Graph graph = make_grid2d(8, 8, rng, opts);
  Rng nd_rng(3);
  const Dissection nd = nested_dissection(graph, 3, nd_rng);
  const auto kernels = SemiringKernels::of<MinMaxSemiring>();
  const SparseApspResult result =
      run_sparse_apsp_semiring(graph, nd, kernels);
  for (Vertex s = 0; s < graph.num_vertices(); ++s) {
    const auto oracle = minimax_sssp(graph, s);
    for (Vertex t = 0; t < graph.num_vertices(); ++t)
      ASSERT_EQ(result.distances.at(s, t),
                oracle[static_cast<std::size_t>(t)])
          << s << "->" << t;
  }
}

TEST(CustomSemiring, MinimaxIsDualOfBottleneck) {
  // On a graph with distinct weights, smoothest-path(u,v) <= widest-path
  // value only relates through the same edge set; sanity-check both
  // against simple bounds: minimax >= the min edge on any u-v cut... we
  // settle for the direct relation minimax(u,v) <= max edge weight and
  // >= min incident edge of u (any path must leave u).
  Rng rng(4);
  WeightOptions opts;
  opts.min_weight = 1;
  opts.max_weight = 50;
  const Graph graph = make_random_geometric(40, 0.3, rng, opts);
  DistBlock a(graph.num_vertices(), graph.num_vertices(), kInf);
  for (Vertex v = 0; v < graph.num_vertices(); ++v) {
    a.at(v, v) = 0;
    for (const auto& nb : graph.neighbors(v)) a.at(v, nb.to) = nb.weight;
  }
  semiring_fw<MinMaxSemiring>(a);
  for (Vertex u = 0; u < graph.num_vertices(); ++u) {
    if (graph.degree(u) == 0) continue;
    Weight min_incident = kInf;
    for (const auto& nb : graph.neighbors(u))
      min_incident = std::min(min_incident, nb.weight);
    for (Vertex v = 0; v < graph.num_vertices(); ++v) {
      if (u == v || is_inf(a.at(u, v))) continue;
      EXPECT_GE(a.at(u, v), min_incident);
      EXPECT_LE(a.at(u, v), 50);
    }
  }
}

}  // namespace
}  // namespace capsp
