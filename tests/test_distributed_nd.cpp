// Tests for the distributed nested dissection: structural equivalence
// with the sequential ND contract, correctness of APSP on its output,
// determinism, and the Sec. 5.4.4 cost claim (ND communication is
// subsumed by the APSP communication).
#include <gtest/gtest.h>

#include "baseline/reference.hpp"
#include "core/sparse_apsp.hpp"
#include "graph/generators.hpp"
#include "partition/distributed_nd.hpp"
#include "semiring/graph_matrix.hpp"

namespace capsp {
namespace {

void expect_valid_dissection(const Graph& graph, const Dissection& nd) {
  const Vertex n = graph.num_vertices();
  std::vector<bool> hit(static_cast<std::size_t>(n), false);
  for (Vertex v = 0; v < n; ++v) {
    const Vertex image = nd.perm[static_cast<std::size_t>(v)];
    ASSERT_GE(image, 0);
    ASSERT_LT(image, n);
    EXPECT_FALSE(hit[static_cast<std::size_t>(image)]);
    hit[static_cast<std::size_t>(image)] = true;
    EXPECT_EQ(nd.iperm[static_cast<std::size_t>(image)], v);
  }
  std::vector<int> covered(static_cast<std::size_t>(n), 0);
  for (Snode s = 1; s <= nd.tree.num_supernodes(); ++s)
    for (Vertex v = nd.range_of(s).begin; v < nd.range_of(s).end; ++v)
      ++covered[static_cast<std::size_t>(v)];
  for (Vertex v = 0; v < n; ++v)
    EXPECT_EQ(covered[static_cast<std::size_t>(v)], 1);
}

class DistributedNdParam
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DistributedNdParam, ProducesValidDissection) {
  const auto [side, height] = GetParam();
  Rng rng(1);
  const Graph graph = make_grid2d(side, side, rng);
  const DistributedNdResult result =
      distributed_nested_dissection(graph, height, 7);
  EXPECT_EQ(result.num_ranks, 1 << (height - 1));
  expect_valid_dissection(graph, result.nd);
}

INSTANTIATE_TEST_SUITE_P(
    Grids, DistributedNdParam,
    ::testing::Combine(::testing::Values(6, 10), ::testing::Values(1, 2, 3,
                                                                   4)));

TEST(DistributedNd, CousinBlocksEmptyLikeSequentialNd) {
  Rng rng(2);
  const Graph graph = make_grid2d(10, 10, rng);
  const DistributedNdResult result =
      distributed_nested_dissection(graph, 3, 11);
  const Graph reordered = apply_dissection(graph, result.nd);
  const DistBlock a = to_distance_matrix(reordered);
  const EliminationTree& tree = result.nd.tree;
  for (Snode i = 1; i <= tree.num_supernodes(); ++i)
    for (Snode j = 1; j <= tree.num_supernodes(); ++j) {
      if (!tree.is_cousin(i, j)) continue;
      for (Vertex r = result.nd.range_of(i).begin;
           r < result.nd.range_of(i).end; ++r)
        for (Vertex c = result.nd.range_of(j).begin;
             c < result.nd.range_of(j).end; ++c)
          ASSERT_TRUE(is_inf(a.at(r, c)))
              << "cousin block (" << i << "," << j << ") not empty";
    }
}

TEST(DistributedNd, ApspOnDistributedNdMatchesOracle) {
  Rng rng(3);
  const Graph graph = make_grid2d(9, 9, rng);
  const DistributedNdResult nd_result =
      distributed_nested_dissection(graph, 3, 5);
  const SparseApspResult apsp = run_sparse_apsp(graph, nd_result.nd);
  const DistBlock want = reference_apsp(graph);
  for (Vertex u = 0; u < graph.num_vertices(); ++u)
    for (Vertex v = 0; v < graph.num_vertices(); ++v)
      ASSERT_NEAR(apsp.distances.at(u, v), want.at(u, v), 1e-9);
}

TEST(DistributedNd, DeterministicGivenSeed) {
  Rng rng(4);
  const Graph graph = make_erdos_renyi(80, 4.0, rng);
  const auto a = distributed_nested_dissection(graph, 3, 9);
  const auto b = distributed_nested_dissection(graph, 3, 9);
  EXPECT_EQ(a.nd.perm, b.nd.perm);
  EXPECT_EQ(a.costs.total_words, b.costs.total_words);
}

TEST(DistributedNd, SeparatorQualityComparableToSequential) {
  Rng rng(5);
  const Graph graph = make_grid2d(16, 16, rng);
  Rng seq_rng(6);
  const Dissection seq = nested_dissection(graph, 3, seq_rng);
  const auto dist = distributed_nested_dissection(graph, 3, 6);
  // Same machinery underneath; tolerate 2x (the vertex distribution to
  // teams differs).
  EXPECT_LE(dist.nd.top_separator_size(),
            2 * seq.top_separator_size() + 4);
}

TEST(DistributedNd, CommunicationSubsumedByApsp) {
  // Sec. 5.4.4: the ND communication must be small against the APSP's.
  Rng rng(7);
  const Graph graph = make_grid2d(20, 20, rng);
  const auto nd_result = distributed_nested_dissection(graph, 4, 8);
  SparseApspOptions options;
  options.collect_distances = false;
  const auto apsp = run_sparse_apsp(graph, nd_result.nd, options);
  EXPECT_LT(nd_result.costs.critical_bandwidth,
            apsp.costs.critical_bandwidth);
  EXPECT_LT(nd_result.costs.total_words, apsp.costs.total_words);
}

TEST(DistributedNd, HeightOneNeedsNoCommunication) {
  Rng rng(8);
  const Graph graph = make_path(20, rng);
  const auto result = distributed_nested_dissection(graph, 1, 1);
  expect_valid_dissection(graph, result.nd);
  EXPECT_EQ(result.costs.total_messages, 0);
  EXPECT_EQ(result.nd.range_of(1).size(), 20);
}

TEST(DistributedNd, DisconnectedAndTinyGraphs) {
  Rng rng(9);
  GraphBuilder builder(12);
  for (Vertex i = 0; i < 5; ++i) {
    builder.add_edge(i, i + 1, 1);
    builder.add_edge(6 + i, 7 + i, 1);
  }
  const Graph graph = std::move(builder).build();
  const auto result = distributed_nested_dissection(graph, 3, 10);
  expect_valid_dissection(graph, result.nd);
  const Graph tiny = make_path(3, rng);
  const auto tiny_result = distributed_nested_dissection(tiny, 3, 10);
  expect_valid_dissection(tiny, tiny_result.nd);
}

}  // namespace
}  // namespace capsp
