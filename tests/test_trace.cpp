// The observability layer (docs/observability.md): event tracing, blame
// attribution, critical-path extraction, volume segmentation at
// reset_clock, traffic-matrix hygiene, and the JSON exporters.
#include <gtest/gtest.h>

#include <sstream>

#include "core/sparse_apsp.hpp"
#include "graph/generators.hpp"
#include "machine/collectives.hpp"
#include "machine/machine.hpp"
#include "machine/trace_export.hpp"

namespace capsp {
namespace {

/// Golden 3-rank exchange exercising every blame case:
///   r0 --2w--> r1   (r1's merge ties on both axes -> local blame)
///   r1 --4w--> r2   (message wins both axes)
///   r2 --1w--> r0   (message wins both axes)
/// Final clocks: r0 (3,7), r1 (2,6), r2 (3,7).
void golden_exchange(Comm& comm) {
  if (comm.rank() == 0) {
    comm.set_phase("a");
    const std::vector<Dist> payload(2, 1.0);
    comm.send(1, 100, payload);
    comm.recv(2, 102);
  } else if (comm.rank() == 1) {
    comm.set_phase("b");
    comm.recv(0, 100);
    const std::vector<Dist> payload(4, 2.0);
    comm.send(2, 101, payload);
  } else {
    comm.set_phase("c");
    comm.recv(1, 101);
    const std::vector<Dist> payload(1, 3.0);
    comm.send(0, 102, payload);
  }
}

TEST(Trace, GoldenCriticalPathLatency) {
  Machine machine(3);
  machine.enable_tracing(true);
  machine.run(golden_exchange);
  EXPECT_EQ(machine.report().critical_latency, 3);
  EXPECT_EQ(machine.report().critical_bandwidth, 7);

  const CriticalPathReport path = machine.critical_path(CostAxis::kLatency);
  EXPECT_EQ(path.total, machine.report().critical_latency);

  // The path must cross exactly the two messages whose merges the message
  // side won; the tied first hop (r0 -> r1) is blamed on local history.
  ASSERT_EQ(path.hops.size(), 2u);
  EXPECT_EQ(path.hops[0].src, 1);
  EXPECT_EQ(path.hops[0].dst, 2);
  EXPECT_EQ(path.hops[0].tag, 101);
  EXPECT_EQ(path.hops[0].words, 4);
  EXPECT_EQ(path.hops[0].phase, "c");
  EXPECT_EQ(path.hops[1].src, 2);
  EXPECT_EQ(path.hops[1].dst, 0);
  EXPECT_EQ(path.hops[1].tag, 102);
  EXPECT_EQ(path.hops[1].words, 1);
  EXPECT_EQ(path.hops[1].phase, "a");

  // Contributions telescope to the total, attributed to the phase where
  // each cost accrued: r1's recv+send under "b", r2's send under "c".
  double sum = 0;
  for (const auto& step : path.steps) sum += step.contribution;
  EXPECT_EQ(sum, path.total);
  EXPECT_EQ(path.by_phase.at("b"), 2);
  EXPECT_EQ(path.by_phase.at("c"), 1);
}

TEST(Trace, GoldenCriticalPathBandwidth) {
  Machine machine(3);
  machine.enable_tracing(true);
  machine.run(golden_exchange);
  const CriticalPathReport path =
      machine.critical_path(CostAxis::kBandwidth);
  EXPECT_EQ(path.total, machine.report().critical_bandwidth);
  ASSERT_EQ(path.hops.size(), 2u);
  EXPECT_EQ(path.hops[0].src, 1);
  EXPECT_EQ(path.hops[1].src, 2);
  double sum = 0;
  for (const auto& step : path.steps) sum += step.contribution;
  EXPECT_EQ(sum, path.total);
  // r1: tied recv (2 words local) + send advance (4 words) = 6 under "b";
  // r2: send advance (1 word) under "c".
  EXPECT_EQ(path.by_phase.at("b"), 6);
  EXPECT_EQ(path.by_phase.at("c"), 1);
}

TEST(Trace, UntracedRunRecordsNothingAndWalkChecks) {
  Machine machine(3);
  machine.run(golden_exchange);
  EXPECT_FALSE(machine.trace().enabled());
  EXPECT_EQ(machine.trace().num_events(), 0u);
  EXPECT_THROW(machine.critical_path(), check_error);
}

TEST(Trace, ClockMonotoneAlongEveryTimeline) {
  Rng rng(5);
  const Graph graph = make_grid2d(8, 8, rng);
  SparseApspOptions options;
  options.height = 2;
  options.collect_distances = false;
  options.trace = true;
  const SparseApspResult result = run_sparse_apsp(graph, options);
  ASSERT_TRUE(result.trace.enabled());
  EXPECT_GT(result.trace.num_events(), 0u);
  for (const auto& timeline : result.trace.per_rank) {
    CostClock previous;  // zero
    bool after_reset = false;
    for (const auto& e : timeline) {
      if (e.kind == TraceEventKind::kClockReset) {
        previous = CostClock{};
        after_reset = true;
        continue;
      }
      if (!after_reset) continue;  // setup may precede the reset
      EXPECT_LE(previous.latency, e.before.latency);
      EXPECT_LE(previous.words, e.before.words);
      EXPECT_LE(e.before.latency, e.after.latency);
      EXPECT_LE(e.before.words, e.after.words);
      previous = e.after;
    }
    EXPECT_TRUE(after_reset);
  }
}

TEST(Trace, SegmentsSumToCriticalCostsOnSparseApsp) {
  // ISSUE acceptance: the per-phase critical-path segments must sum to
  // the report's critical costs exactly (every value is integer-valued).
  Rng rng(5);
  const Graph graph = make_grid2d(10, 10, rng);
  for (int h : {2, 3}) {
    SparseApspOptions options;
    options.height = h;
    options.collect_distances = false;
    options.trace = true;
    const SparseApspResult result = run_sparse_apsp(graph, options);
    for (const CostAxis axis : {CostAxis::kLatency, CostAxis::kBandwidth}) {
      const CriticalPathReport path =
          extract_critical_path(result.trace, axis);
      const double expected = axis == CostAxis::kLatency
                                  ? result.costs.critical_latency
                                  : result.costs.critical_bandwidth;
      EXPECT_EQ(path.total, expected);
      double by_phase_sum = 0;
      for (const auto& [phase, cost] : path.by_phase) by_phase_sum += cost;
      EXPECT_EQ(by_phase_sum, expected);
      // Phase labels on the path are the algorithm's L<l>/R<r> labels.
      for (const auto& [phase, cost] : path.by_phase)
        EXPECT_TRUE(phase.find("R") != std::string::npos ||
                    phase == "collect" || phase == "setup")
            << phase;
    }
  }
}

TEST(Trace, TracingDoesNotPerturbCosts) {
  Rng rng(5);
  const Graph graph = make_grid2d(9, 9, rng);
  SparseApspOptions options;
  options.height = 3;
  options.collect_distances = false;
  SparseApspOptions traced = options;
  traced.trace = true;
  const SparseApspResult plain = run_sparse_apsp(graph, options);
  const SparseApspResult with_trace = run_sparse_apsp(graph, traced);
  EXPECT_EQ(plain.costs.critical_latency,
            with_trace.costs.critical_latency);
  EXPECT_EQ(plain.costs.critical_bandwidth,
            with_trace.costs.critical_bandwidth);
  EXPECT_EQ(plain.costs.total_messages, with_trace.costs.total_messages);
  EXPECT_EQ(plain.costs.total_words, with_trace.costs.total_words);
  EXPECT_EQ(plain.ops_per_rank, with_trace.ops_per_rank);
}

TEST(Trace, ResetClockSegmentsVolumes) {
  Machine machine(2);
  machine.run([](Comm& comm) {
    comm.set_phase("setup");
    if (comm.rank() == 0) {
      const std::vector<Dist> payload(3, 1.0);
      comm.send(1, 1, payload);
    } else {
      comm.recv(0, 1);
    }
    comm.reset_clock();
    comm.set_phase("setup");  // deliberately reused label
    if (comm.rank() == 1) {
      const std::vector<Dist> payload(5, 2.0);
      comm.send(0, 2, payload);
    } else {
      comm.recv(1, 2);
    }
  });
  const CostReport& report = machine.report();
  // Headline volumes cover post-reset traffic only; the pre-reset segment
  // is reported separately — even though the phase label was reused.
  EXPECT_EQ(report.total_messages, 1);
  EXPECT_EQ(report.total_words, 5);
  EXPECT_EQ(report.setup_messages, 1);
  EXPECT_EQ(report.setup_words, 3);
  ASSERT_TRUE(report.phase_total.count("setup"));
  EXPECT_EQ(report.phase_total.at("setup").words, 5);
  ASSERT_TRUE(report.setup_phase_total.count("setup"));
  EXPECT_EQ(report.setup_phase_total.at("setup").words, 3);
  // The clocks restart at the reset: one message of five words remains.
  EXPECT_EQ(report.critical_latency, 1);
  EXPECT_EQ(report.critical_bandwidth, 5);
}

TEST(Trace, TrafficMatrixBoundsChecked) {
  const TrafficMatrix empty;
  EXPECT_THROW(empty.words_between(0, 0), check_error);
  EXPECT_THROW(empty.messages_between(0, 0), check_error);

  Machine machine(2);
  machine.enable_traffic_recording(true);
  machine.run([](Comm& comm) {
    if (comm.rank() == 0) {
      const std::vector<Dist> payload(4, 1.0);
      comm.send(1, 7, payload);
    } else {
      comm.recv(0, 7);
    }
  });
  EXPECT_EQ(machine.traffic().words_between(0, 1), 4);
  EXPECT_THROW(machine.traffic().words_between(0, 2), check_error);
  EXPECT_THROW(machine.traffic().messages_between(-1, 0), check_error);
}

TEST(Trace, RunClearsTrafficAndTraceBetweenRuns) {
  Machine machine(2);
  machine.enable_traffic_recording(true);
  machine.enable_tracing(true);
  machine.run([](Comm& comm) {
    if (comm.rank() == 0) {
      const std::vector<Dist> payload(4, 1.0);
      comm.send(1, 7, payload);
    } else {
      comm.recv(0, 7);
    }
  });
  EXPECT_EQ(machine.traffic().words_between(0, 1), 4);
  EXPECT_GT(machine.trace().num_events(), 0u);

  // A second, silent run must not inherit the first run's counters.
  machine.run([](Comm&) {});
  EXPECT_EQ(machine.traffic().words_between(0, 1), 0);
  EXPECT_EQ(machine.traffic().messages_between(1, 0), 0);
  EXPECT_EQ(machine.trace().num_events(), 0u);
  EXPECT_EQ(machine.report().total_messages, 0);
}

TEST(Trace, CollectiveSpansAppearPaired) {
  Machine machine(4);
  machine.enable_tracing(true);
  machine.run([](Comm& comm) {
    std::vector<RankId> group{0, 1, 2, 3};
    DistBlock block(2, 2, 1.0);
    group_broadcast(comm, group, 0, block, 5);
  });
  for (const auto& timeline : machine.trace().per_rank) {
    int depth = 0;
    int begins = 0;
    for (const auto& e : timeline) {
      if (e.kind == TraceEventKind::kSpanBegin) {
        EXPECT_EQ(e.label, "bcast");
        ++depth;
        ++begins;
      } else if (e.kind == TraceEventKind::kSpanEnd) {
        --depth;
        EXPECT_GE(depth, 0);
      }
    }
    EXPECT_EQ(depth, 0);
    EXPECT_EQ(begins, 1);
  }
}

TEST(TraceExport, ChromeTraceAndReportJsonAreWellFormed) {
  Machine machine(3);
  machine.enable_tracing(true);
  machine.run(golden_exchange);
  const CriticalPathReport lat = machine.critical_path(CostAxis::kLatency);
  const CriticalPathReport bw = machine.critical_path(CostAxis::kBandwidth);

  std::ostringstream trace_out;
  write_chrome_trace(trace_out, machine.trace(), &lat, &bw);
  const std::string trace_json = trace_out.str();
  EXPECT_NE(trace_json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace_json.find("\"capsp\""), std::string::npos);
  EXPECT_NE(trace_json.find("\"critical_latency\""), std::string::npos);
  // Flow arrows: one start and one finish per crossed message.
  EXPECT_NE(trace_json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(trace_json.find("\"ph\":\"f\""), std::string::npos);

  std::ostringstream report_out;
  write_cost_report_json(report_out, machine.report(), &lat, &bw);
  const std::string report_json = report_out.str();
  EXPECT_NE(report_json.find("\"critical_path_latency\""),
            std::string::npos);
  EXPECT_NE(report_json.find("\"by_phase\""), std::string::npos);

  // Structural sanity both parsers rely on: balanced braces/brackets and
  // no trailing garbage (the CI smoke runs a real JSON parser on top).
  for (const std::string& json : {trace_json, report_json}) {
    std::int64_t braces = 0, brackets = 0;
    bool in_string = false;
    for (std::size_t i = 0; i < json.size(); ++i) {
      const char c = json[i];
      if (in_string) {
        if (c == '\\') ++i;
        else if (c == '"') in_string = false;
        continue;
      }
      if (c == '"') in_string = true;
      if (c == '{') ++braces;
      if (c == '}') --braces;
      if (c == '[') ++brackets;
      if (c == ']') --brackets;
      EXPECT_GE(braces, 0);
      EXPECT_GE(brackets, 0);
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
    EXPECT_FALSE(in_string);
  }
}

TEST(TraceExport, JsonEscapingIsSafe) {
  Machine machine(2);
  machine.enable_tracing(true);
  machine.run([](Comm& comm) {
    comm.set_phase("we\"ird\\phase\n");
    if (comm.rank() == 0) {
      const std::vector<Dist> payload(1, 1.0);
      comm.send(1, 1, payload);
    } else {
      comm.recv(0, 1);
    }
  });
  std::ostringstream out;
  write_chrome_trace(out, machine.trace());
  const std::string json = out.str();
  EXPECT_NE(json.find("we\\\"ird\\\\phase\\n"), std::string::npos);
  EXPECT_EQ(json.find("we\"ird"), std::string::npos);
}

}  // namespace
}  // namespace capsp
