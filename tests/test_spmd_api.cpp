// Tests for the advanced (SPMD) API that docs/using.md and the
// traffic_heatmap example rely on: driving sparse_apsp_rank and
// dc_apsp_rank on a hand-built machine, plus the Timer utility.
#include <gtest/gtest.h>

#include <thread>

#include "baseline/dc_apsp.hpp"
#include "baseline/reference.hpp"
#include "core/sparse_apsp.hpp"
#include "graph/generators.hpp"
#include "semiring/graph_matrix.hpp"
#include "util/timer.hpp"

namespace capsp {
namespace {

TEST(SpmdApi, HandBuiltSparseRunMatchesDriver) {
  Rng rng(1);
  const Graph graph = make_grid2d(8, 8, rng);
  Rng nd_rng(2);
  const Dissection nd = nested_dissection(graph, 3, nd_rng);
  const ApspLayout layout(nd);
  const Graph reordered = apply_dissection(graph, nd);

  Machine machine(layout.num_ranks());
  machine.enable_traffic_recording(true);
  // Collect final blocks into a shared table (one writer per slot).
  std::vector<DistBlock> finals(
      static_cast<std::size_t>(layout.num_ranks()));
  machine.run([&](Comm& comm) {
    const auto [i, j] = layout.block_of(comm.rank());
    DistBlock local = adjacency_block(
        reordered, layout.range_of(i).begin, layout.range_of(i).end,
        layout.range_of(j).begin, layout.range_of(j).end);
    sparse_apsp_rank(comm, layout, local);
    finals[static_cast<std::size_t>(comm.rank())] = std::move(local);
  });

  // Assemble and compare against the oracle (in reordered ids).
  DistBlock assembled(graph.num_vertices(), graph.num_vertices());
  for (RankId r = 0; r < layout.num_ranks(); ++r) {
    const auto [i, j] = layout.block_of(r);
    assembled.set_sub_block(layout.range_of(i).begin,
                            layout.range_of(j).begin,
                            finals[static_cast<std::size_t>(r)]);
  }
  const DistBlock want = reference_apsp(reordered);
  for (Vertex u = 0; u < graph.num_vertices(); ++u)
    for (Vertex v = 0; v < graph.num_vertices(); ++v)
      ASSERT_NEAR(assembled.at(u, v), want.at(u, v), 1e-9);

  // Traffic matrix recorded and consistent with the report.
  const TrafficMatrix& traffic = machine.traffic();
  ASSERT_EQ(traffic.num_ranks, layout.num_ranks());
  std::int64_t total = 0;
  for (RankId s = 0; s < traffic.num_ranks; ++s)
    for (RankId d = 0; d < traffic.num_ranks; ++d)
      total += traffic.words_between(s, d);
  EXPECT_EQ(total, machine.report().total_words);
}

TEST(SpmdApi, SparseTrafficIsSparserThanDense) {
  // The traffic_heatmap example's claim, as a test: the sparse algorithm
  // uses far fewer rank pairs than p².
  Rng rng(3);
  const Graph graph = make_grid2d(10, 10, rng);
  Rng nd_rng(4);
  const Dissection nd = nested_dissection(graph, 3, nd_rng);
  const ApspLayout layout(nd);
  const Graph reordered = apply_dissection(graph, nd);
  Machine machine(layout.num_ranks());
  machine.enable_traffic_recording(true);
  machine.run([&](Comm& comm) {
    const auto [i, j] = layout.block_of(comm.rank());
    DistBlock local = adjacency_block(
        reordered, layout.range_of(i).begin, layout.range_of(i).end,
        layout.range_of(j).begin, layout.range_of(j).end);
    sparse_apsp_rank(comm, layout, local);
  });
  const TrafficMatrix& traffic = machine.traffic();
  int used = 0;
  const int p = layout.num_ranks();
  for (RankId s = 0; s < p; ++s)
    for (RankId d = 0; d < p; ++d) used += traffic.words_between(s, d) > 0;
  EXPECT_LT(used, p * p / 3) << "communication graph not sparse";
}

TEST(SpmdApi, DcRankCallableDirectly) {
  Rng rng(5);
  const Graph graph = make_grid2d(6, 6, rng);
  const DistBlock full = to_distance_matrix(graph);
  std::vector<RankId> ranks{0, 1, 2, 3};
  const GridLayout grid = GridLayout::square(ranks, 2, graph.num_vertices());
  Machine machine(4);
  std::vector<DistBlock> finals(4);
  machine.run([&](Comm& comm) {
    const auto [gr, gc] = grid.coords_of(comm.rank());
    const IndexRect rect = grid.block_rect(gr, gc);
    DistBlock local = full.sub_block(rect.row_begin, rect.col_begin,
                                     rect.rows(), rect.cols());
    Tag tag = 0;
    dc_apsp_rank(comm, grid, local, tag);
    finals[static_cast<std::size_t>(comm.rank())] = std::move(local);
  });
  const DistBlock want = reference_apsp(graph);
  for (RankId r = 0; r < 4; ++r) {
    const auto [gr, gc] = grid.coords_of(r);
    const IndexRect rect = grid.block_rect(gr, gc);
    for (std::int64_t i = 0; i < rect.rows(); ++i)
      for (std::int64_t j = 0; j < rect.cols(); ++j)
        ASSERT_NEAR(finals[static_cast<std::size_t>(r)].at(i, j),
                    want.at(rect.row_begin + i, rect.col_begin + j), 1e-9);
  }
}

TEST(Timer, MeasuresElapsedTime) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double first = timer.seconds();
  EXPECT_GE(first, 0.015);
  EXPECT_LT(first, 5.0);
  timer.reset();
  EXPECT_LT(timer.seconds(), first);
  EXPECT_GE(timer.millis(), 0.0);
}

}  // namespace
}  // namespace capsp
