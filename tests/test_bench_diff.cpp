// The bench regression gate (docs/metrics.md): the strict JSON parser,
// document-level diffing with tolerances, structural-mismatch detection,
// and the report writers.  Directory-level behaviour (including the
// self-compare of the committed baselines) is exercised by the
// bench_diff_self ctest registered in tools/CMakeLists.txt.
#include <gtest/gtest.h>

#include <sstream>

#include "util/bench_compare.hpp"
#include "util/check.hpp"
#include "util/json_parse.hpp"

namespace capsp {
namespace {

// --- parser ---

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_TRUE(parse_json("true").boolean);
  EXPECT_FALSE(parse_json("false").boolean);
  EXPECT_DOUBLE_EQ(parse_json("-12.5e2").number, -1250.0);
  EXPECT_EQ(parse_json(R"("a\"b\\c\nA")").string, "a\"b\\c\nA");
}

TEST(JsonParse, NestedStructure) {
  const JsonValue doc =
      parse_json(R"({"bench": "x", "records": [{"n": 1}, {"n": 2}]})");
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("bench")->string, "x");
  const JsonValue* records = doc.find("records");
  ASSERT_TRUE(records && records->is_array());
  ASSERT_EQ(records->array.size(), 2u);
  EXPECT_DOUBLE_EQ(records->array[1].find("n")->number, 2.0);
  EXPECT_EQ(doc.find("absent"), nullptr);
}

TEST(JsonParse, ErrorsThrow) {
  EXPECT_THROW(parse_json(""), check_error);
  EXPECT_THROW(parse_json("{"), check_error);
  EXPECT_THROW(parse_json("[1,]"), check_error);
  EXPECT_THROW(parse_json("12 garbage"), check_error);
  EXPECT_THROW(parse_json(R"({"a": 1 "b": 2})"), check_error);
}

// --- diffing ---

JsonValue doc(const std::string& records_json) {
  return parse_json(R"({"bench": "t", "records": )" + records_json + "}");
}

BenchDiffReport diff(const std::string& base, const std::string& cand,
                     const BenchDiffOptions& options = {}) {
  BenchDiffReport report;
  diff_bench_documents(doc(base), doc(cand), "BENCH_t.json", options, report);
  return report;
}

TEST(BenchDiff, IdenticalPasses) {
  const BenchDiffReport r =
      diff(R"([{"case": "a", "ops": 100, "words": 5}])",
           R"([{"case": "a", "ops": 100, "words": 5}])");
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.exit_code(), 0);
  EXPECT_EQ(r.metrics_compared, 2);
  EXPECT_TRUE(r.deltas.empty());
}

TEST(BenchDiff, DoubledOpCountFails) {
  const BenchDiffReport r =
      diff(R"([{"ops": 100}])", R"([{"ops": 200}])");
  EXPECT_EQ(r.exit_code(), 1);
  ASSERT_EQ(r.deltas.size(), 1u);
  EXPECT_EQ(r.deltas[0].metric, "ops");
  EXPECT_DOUBLE_EQ(r.deltas[0].relative_change, 1.0);
  EXPECT_TRUE(r.deltas[0].violation);
}

TEST(BenchDiff, ImprovementAlsoFails) {
  // The gate is a change detector: unexplained improvements are drift.
  const BenchDiffReport r = diff(R"([{"ops": 100}])", R"([{"ops": 50}])");
  EXPECT_EQ(r.exit_code(), 1);
}

TEST(BenchDiff, ToleranceEdge) {
  BenchDiffOptions options;
  options.tolerance = 0.1;
  // Exactly at the edge passes (violation is strict >)…
  EXPECT_EQ(diff(R"([{"ops": 100}])", R"([{"ops": 110}])", options)
                .exit_code(),
            0);
  // …one step beyond fails.
  EXPECT_EQ(diff(R"([{"ops": 100}])", R"([{"ops": 110.2}])", options)
                .exit_code(),
            1);
}

TEST(BenchDiff, PerMetricToleranceOverride) {
  BenchDiffOptions options;
  options.tolerance = 0.0;
  options.metric_tolerance["ops"] = 0.5;
  const BenchDiffReport r =
      diff(R"([{"ops": 120, "words": 10}])",
           R"([{"ops": 150, "words": 10}])", options);
  EXPECT_EQ(r.exit_code(), 0);  // ops covered by its override
  ASSERT_EQ(r.deltas.size(), 1u);
  EXPECT_FALSE(r.deltas[0].violation);
}

TEST(GlobMatch, WildcardSemantics) {
  EXPECT_TRUE(glob_match("ops", "ops"));
  EXPECT_FALSE(glob_match("ops", "ops_per_second"));
  EXPECT_TRUE(glob_match("ops_per_*", "ops_per_second"));
  EXPECT_TRUE(glob_match("ops_per_*", "ops_per_"));
  EXPECT_FALSE(glob_match("ops_per_*", "ops"));
  EXPECT_TRUE(glob_match("*_misses", "llc_misses"));
  EXPECT_TRUE(glob_match("*", "anything"));
  EXPECT_TRUE(glob_match("*", ""));
  EXPECT_FALSE(glob_match("", "x"));
  EXPECT_TRUE(glob_match("", ""));
  // Multiple stars backtrack: the first '*' absorbs enough for the rest.
  EXPECT_TRUE(glob_match("a*b*c", "aXXbYYc"));
  EXPECT_TRUE(glob_match("a*b*c", "abbc"));
  EXPECT_FALSE(glob_match("a*b*c", "aXXbYY"));
}

TEST(BenchDiff, MetricClassAppliesByPattern) {
  BenchDiffOptions options;
  options.metric_classes.push_back({"ops_per_*", 0.5, false});
  const BenchDiffReport r =
      diff(R"([{"ops_per_second": 100, "words": 10}])",
           R"([{"ops_per_second": 140, "words": 10}])", options);
  EXPECT_EQ(r.exit_code(), 0);  // 40% < the class's 50%
  ASSERT_EQ(r.deltas.size(), 1u);
  EXPECT_DOUBLE_EQ(r.deltas[0].tolerance, 0.5);
}

TEST(BenchDiff, MetricClassSkipExcludesFromComparison) {
  BenchDiffOptions options;
  options.metric_classes.push_back({"*_misses", 0.0, true});
  const BenchDiffReport r =
      diff(R"([{"llc_misses": 100, "words": 10}])",
           R"([{"llc_misses": 9000, "words": 10}])", options);
  EXPECT_EQ(r.exit_code(), 0);
  EXPECT_TRUE(r.deltas.empty());       // skipped, not merely tolerated
  EXPECT_EQ(r.metrics_compared, 1);    // only "words" counted
}

TEST(BenchDiff, ExactOverrideBeatsClassAndFirstClassWins) {
  BenchDiffOptions options;
  options.metric_tolerance["ops_per_second"] = 0.1;
  options.metric_classes.push_back({"ops_per_*", 0.0, true});  // would skip
  options.metric_classes.push_back({"ops_*", 2.0, false});     // shadowed
  const BenchDiffReport r =
      diff(R"([{"ops_per_second": 100, "ops_per_cycle": 1}])",
           R"([{"ops_per_second": 140, "ops_per_cycle": 9}])", options);
  // ops_per_second: exact override (10%) -> 40% change violates.
  // ops_per_cycle: first class wins -> skipped despite the looser second.
  EXPECT_EQ(r.violations, 1);
  ASSERT_EQ(r.deltas.size(), 1u);
  EXPECT_EQ(r.deltas[0].metric, "ops_per_second");
  EXPECT_DOUBLE_EQ(r.deltas[0].tolerance, 0.1);
}

TEST(BenchDiff, SmallBaselineUsesAbsoluteFloor) {
  // rel = |c - b| / max(|b|, 1): a 0 -> 0.5 move is a 50% change, not a
  // division by zero.
  const BenchDiffReport r = diff(R"([{"x": 0}])", R"([{"x": 0.5}])");
  ASSERT_EQ(r.deltas.size(), 1u);
  EXPECT_DOUBLE_EQ(r.deltas[0].relative_change, 0.5);
}

TEST(BenchDiff, TimeLikeFieldsIgnoredByDefault) {
  const BenchDiffReport r =
      diff(R"([{"ops": 1, "wall_ms": 5, "elapsed_seconds": 1}])",
           R"([{"ops": 1, "wall_ms": 50, "elapsed_seconds": 9}])");
  EXPECT_EQ(r.exit_code(), 0);
  EXPECT_EQ(r.metrics_compared, 1);

  BenchDiffOptions compare_time;
  compare_time.ignore_time_like = false;
  const BenchDiffReport r2 =
      diff(R"([{"wall_ms": 5}])", R"([{"wall_ms": 50}])", compare_time);
  EXPECT_EQ(r2.exit_code(), 1);
}

TEST(BenchDiff, MissingFieldIsStructural) {
  const BenchDiffReport r =
      diff(R"([{"ops": 1, "words": 2}])", R"([{"ops": 1}])");
  EXPECT_EQ(r.exit_code(), 3);
  ASSERT_EQ(r.problems.size(), 1u);
}

TEST(BenchDiff, NewCandidateFieldsAllowed) {
  // A refreshed binary may add metrics; only baseline coverage is gated.
  const BenchDiffReport r =
      diff(R"([{"ops": 1}])", R"([{"ops": 1, "extra": 9}])");
  EXPECT_EQ(r.exit_code(), 0);
}

TEST(BenchDiff, RecordCountDriftIsStructural) {
  const BenchDiffReport r =
      diff(R"([{"ops": 1}, {"ops": 2}])", R"([{"ops": 1}])");
  EXPECT_EQ(r.exit_code(), 3);
}

TEST(BenchDiff, IdentityFieldChangeIsStructural) {
  const BenchDiffReport r = diff(R"([{"case": "grid", "ops": 1}])",
                                 R"([{"case": "tree", "ops": 1}])");
  EXPECT_EQ(r.exit_code(), 3);
}

TEST(BenchDiff, StructuralBeatsViolationInExitCode) {
  BenchDiffReport report;
  report.violations = 2;
  report.problems.push_back("missing bench");
  EXPECT_EQ(report.exit_code(), 3);
}

// --- reports ---

TEST(BenchDiff, ReportsSerialize) {
  const BenchDiffReport r = diff(R"([{"case": "a", "ops": 100}])",
                                 R"([{"case": "a", "ops": 200}])");
  std::ostringstream md;
  write_bench_diff_markdown(md, r);
  EXPECT_NE(md.str().find("FAIL"), std::string::npos);
  EXPECT_NE(md.str().find("ops"), std::string::npos);

  std::ostringstream js;
  write_bench_diff_json(js, r);
  const JsonValue parsed = parse_json(js.str());
  EXPECT_EQ(parsed.find("exit_code")->number, 1.0);
  EXPECT_EQ(parsed.find("deltas")->array.size(), 1u);
  EXPECT_EQ(parsed.find("deltas")->array[0].find("metric")->string, "ops");
}

}  // namespace
}  // namespace capsp
