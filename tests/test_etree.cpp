// Exhaustive tests of the elimination-tree label algebra (paper Sec. 4.2,
// Fig. 3a).  Most properties are checked for every node of every tree up
// to height 7 (N = 127 supernodes), so the index arithmetic the scheduler
// relies on is verified over the whole range the benches use.
#include <gtest/gtest.h>

#include <set>

#include "tree/etree.hpp"

namespace capsp {
namespace {

TEST(ETree, CountsMatchPerfectTree) {
  for (int h = 1; h <= 7; ++h) {
    const EliminationTree tree(h);
    EXPECT_EQ(tree.num_supernodes(), (1 << h) - 1);
    Snode total = 0;
    for (int l = 1; l <= h; ++l) {
      EXPECT_EQ(tree.level_size(l), 1 << (h - l));
      total += tree.level_size(l);
    }
    EXPECT_EQ(total, tree.num_supernodes());
  }
}

TEST(ETree, Figure3aLabels) {
  // The paper's 4-level example: leaves 1..8, then 9..12, 13..14, root 15.
  const EliminationTree tree(4);
  EXPECT_EQ(tree.level_begin(1), 1);
  EXPECT_EQ(tree.level_begin(2), 9);
  EXPECT_EQ(tree.level_begin(3), 13);
  EXPECT_EQ(tree.level_begin(4), 15);
  EXPECT_EQ(tree.parent(1), 9);
  EXPECT_EQ(tree.parent(2), 9);
  EXPECT_EQ(tree.parent(3), 10);
  EXPECT_EQ(tree.parent(9), 13);
  EXPECT_EQ(tree.parent(12), 14);
  EXPECT_EQ(tree.parent(13), 15);
}

TEST(ETree, PaperFig2bExample) {
  // Fig. 2b: 3-level tree, A(3) = {7}, D(3) = {1, 2}, C(3) = {4, 5, 6}.
  // In bottom-up labels the node "3" of the figure is supernode 5 (first
  // level-2 node); its leaves are 1, 2.
  const EliminationTree tree(3);
  EXPECT_EQ(tree.ancestors(5), (std::vector<Snode>{7}));
  EXPECT_EQ(tree.descendants(5), (std::vector<Snode>{1, 2}));
  EXPECT_EQ(tree.cousins(5), (std::vector<Snode>{3, 4, 6}));
}

TEST(ETree, LevelOfRoundTripsNodeAt) {
  for (int h = 1; h <= 7; ++h) {
    const EliminationTree tree(h);
    for (Snode s = 1; s <= tree.num_supernodes(); ++s) {
      const int l = tree.level_of(s);
      EXPECT_EQ(tree.node_at(l, tree.index_in_level(s)), s);
    }
  }
}

TEST(ETree, LevelSetsPartitionLabels) {
  for (int h = 1; h <= 7; ++h) {
    const EliminationTree tree(h);
    std::set<Snode> seen;
    for (int l = 1; l <= h; ++l)
      for (Snode s : tree.level_set(l)) {
        EXPECT_TRUE(seen.insert(s).second) << "duplicate " << s;
        EXPECT_EQ(tree.level_of(s), l);
      }
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(tree.num_supernodes()));
  }
}

TEST(ETree, ParentChildConsistency) {
  for (int h = 2; h <= 7; ++h) {
    const EliminationTree tree(h);
    for (Snode s = 1; s <= tree.num_supernodes(); ++s) {
      if (tree.level_of(s) >= 2) {
        const auto [left, right] = tree.children(s);
        EXPECT_EQ(tree.parent(left), s);
        EXPECT_EQ(tree.parent(right), s);
        EXPECT_EQ(left + 1, right);
      }
      if (tree.level_of(s) < h) {
        EXPECT_GT(tree.parent(s), s);  // bottom-up labels grow upward
      }
    }
  }
}

TEST(ETree, AncestorCountsMatchPaper) {
  // |A(k)| = h - level(k), |D(k)| = 2^level - 2 (Lemma 5.6's census).
  for (int h = 1; h <= 7; ++h) {
    const EliminationTree tree(h);
    for (Snode s = 1; s <= tree.num_supernodes(); ++s) {
      const int l = tree.level_of(s);
      EXPECT_EQ(tree.ancestors(s).size(), static_cast<std::size_t>(h - l));
      EXPECT_EQ(tree.descendants(s).size(),
                static_cast<std::size_t>((1 << l) - 2));
    }
  }
}

TEST(ETree, AncestorDescendantDuality) {
  for (int h = 1; h <= 6; ++h) {
    const EliminationTree tree(h);
    for (Snode a = 1; a <= tree.num_supernodes(); ++a)
      for (Snode b = 1; b <= tree.num_supernodes(); ++b) {
        EXPECT_EQ(tree.is_ancestor(a, b), tree.is_descendant(b, a));
        if (a == b) {
          EXPECT_FALSE(tree.is_ancestor(a, b));
          EXPECT_FALSE(tree.is_cousin(a, b));
          EXPECT_TRUE(tree.related(a, b));
        }
      }
  }
}

TEST(ETree, TrichotomyEqualAncestorDescendantCousin) {
  for (int h = 1; h <= 6; ++h) {
    const EliminationTree tree(h);
    for (Snode a = 1; a <= tree.num_supernodes(); ++a)
      for (Snode b = 1; b <= tree.num_supernodes(); ++b) {
        const int classes = (a == b) + tree.is_ancestor(a, b) +
                            tree.is_ancestor(b, a) + tree.is_cousin(a, b);
        EXPECT_EQ(classes, 1) << "a=" << a << " b=" << b;
      }
  }
}

TEST(ETree, AncestorListMatchesParentWalk) {
  for (int h = 1; h <= 7; ++h) {
    const EliminationTree tree(h);
    for (Snode s = 1; s <= tree.num_supernodes(); ++s) {
      std::vector<Snode> walk;
      Snode cursor = s;
      while (tree.level_of(cursor) < h) {
        cursor = tree.parent(cursor);
        walk.push_back(cursor);
      }
      EXPECT_EQ(tree.ancestors(s), walk);
    }
  }
}

TEST(ETree, AncestorAtLevelAgreesWithList) {
  for (int h = 2; h <= 7; ++h) {
    const EliminationTree tree(h);
    for (Snode s = 1; s <= tree.num_supernodes(); ++s) {
      const int l = tree.level_of(s);
      EXPECT_EQ(tree.ancestor_at_level(s, l), s);
      const auto ancestors = tree.ancestors(s);
      for (int target = l + 1; target <= h; ++target)
        EXPECT_EQ(tree.ancestor_at_level(s, target),
                  ancestors[static_cast<std::size_t>(target - l - 1)]);
    }
  }
}

TEST(ETree, DescendantRangeIsContiguousAndCorrect) {
  for (int h = 2; h <= 7; ++h) {
    const EliminationTree tree(h);
    for (Snode s = 1; s <= tree.num_supernodes(); ++s) {
      const int l = tree.level_of(s);
      for (int dl = 1; dl <= l; ++dl) {
        const auto [begin, end] = tree.descendant_range_at_level(s, dl);
        EXPECT_EQ(end - begin, 1 << (l - dl));
        for (Snode k = begin; k < end; ++k) {
          EXPECT_EQ(tree.level_of(k), dl);
          EXPECT_TRUE(k == s || tree.is_descendant(k, s));
        }
        // Nothing else at level dl descends from s.
        for (Snode k : tree.level_set(dl)) {
          const bool inside = (k >= begin && k < end);
          EXPECT_EQ(inside, k == s || tree.is_descendant(k, s));
        }
      }
    }
  }
}

TEST(ETree, CousinsAreSymmetric) {
  const EliminationTree tree(5);
  for (Snode a = 1; a <= tree.num_supernodes(); ++a)
    for (Snode b = 1; b <= tree.num_supernodes(); ++b)
      EXPECT_EQ(tree.is_cousin(a, b), tree.is_cousin(b, a));
}

TEST(ETree, RootRelatedToEverything) {
  for (int h = 1; h <= 6; ++h) {
    const EliminationTree tree(h);
    const Snode root = tree.num_supernodes();
    for (Snode s = 1; s < root; ++s) {
      EXPECT_TRUE(tree.is_ancestor(root, s));
      EXPECT_TRUE(tree.related(root, s));
    }
    EXPECT_EQ(tree.cousins(root).size(), 0u);
  }
}

TEST(ETree, InvalidArgumentsRejected) {
  const EliminationTree tree(3);
  EXPECT_THROW(tree.level_of(0), check_error);
  EXPECT_THROW(tree.level_of(8), check_error);
  EXPECT_THROW(tree.parent(7), check_error);     // root
  EXPECT_THROW(tree.children(1), check_error);   // leaf
  EXPECT_THROW(tree.level_set(0), check_error);
  EXPECT_THROW(tree.level_set(4), check_error);
  EXPECT_THROW(EliminationTree(0), check_error);
}

TEST(ETree, HeightOneDegenerateTree) {
  const EliminationTree tree(1);
  EXPECT_EQ(tree.num_supernodes(), 1);
  EXPECT_EQ(tree.level_of(1), 1);
  EXPECT_TRUE(tree.ancestors(1).empty());
  EXPECT_TRUE(tree.descendants(1).empty());
  EXPECT_TRUE(tree.cousins(1).empty());
}

}  // namespace
}  // namespace capsp
