// Tests for the black-box flight recorder (util/flightrec.hpp): ring
// recording and wrap-around, thread churn with ring reuse, the dump
// JSON schema and its string escaping, CHECK-failure enrichment (thread
// id + ProfScope stack in the message, a ring event, a dump when a path
// is armed), and the acceptance scenario — a chaos-style service run
// whose dump carries the injected faults, quarantine transitions, and
// the request ids of in-flight queries (docs/observability.md).
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "baseline/reference.hpp"
#include "graph/generators.hpp"
#include "serve/servefault.hpp"
#include "serve/service.hpp"
#include "serve/snapshot.hpp"
#include "util/check.hpp"
#include "util/flightrec.hpp"
#include "util/log.hpp"
#include "util/prof.hpp"
#include "util/rng.hpp"

namespace capsp {
namespace {

flightrec::Event make_event(const char* name, const char* detail,
                            double ts = 0) {
  flightrec::Event event;
  event.event = name;
  event.file = "test_flightrec.cpp";
  event.line = 1;
  event.level = 2;  // info
  event.ts = ts;
  std::snprintf(event.detail, sizeof(event.detail), "%s", detail);
  return event;
}

// ---------------------------------------------------------------------------
// Recording

TEST(FlightRecorder, RecordedEventsComeBackFromRecentEvents) {
  flightrec::record(make_event("test.rec.alpha", "a=1"));
  flightrec::record(make_event("test.rec.beta", "b=2"));
  const std::string json = flightrec::recent_events_json(1024);
  EXPECT_NE(json.find("\"logs\""), std::string::npos);
  EXPECT_NE(json.find("test.rec.alpha"), std::string::npos);
  EXPECT_NE(json.find("test.rec.beta"), std::string::npos);
  EXPECT_NE(json.find("a=1"), std::string::npos);
}

TEST(FlightRecorder, RingKeepsOnlyTheLastCapacityEvents) {
  // Overfill this thread's ring; the oldest events must be evicted.
  for (std::int64_t i = 0; i < flightrec::kRingCapacity + 50; ++i) {
    char detail[32];
    std::snprintf(detail, sizeof(detail), "i=%lld",
                  static_cast<long long>(i));
    flightrec::record(make_event("test.wrap", detail, 1e9 + double(i)));
  }
  const std::string dump = flightrec::dump_string("wrap_test");
  EXPECT_NE(dump.find("\"i=305\""), std::string::npos)  // the newest
      << dump.substr(0, 400);
  EXPECT_EQ(dump.find("\"i=5\""), std::string::npos);  // evicted
}

TEST(FlightRecorder, RecentEventsAreTimeSortedAndBounded) {
  flightrec::record(make_event("test.sort.late", "", 2e9));
  flightrec::record(make_event("test.sort.early", "", 1.5e9));
  const std::string json = flightrec::recent_events_json(4096);
  const std::size_t early = json.find("test.sort.early");
  const std::size_t late = json.find("test.sort.late");
  ASSERT_NE(early, std::string::npos);
  ASSERT_NE(late, std::string::npos);
  EXPECT_LT(early, late);
  // max_events bounds the tail: asking for 1 returns only the newest.
  const std::string tail = flightrec::recent_events_json(1);
  EXPECT_EQ(tail.find("test.sort.early"), std::string::npos);
  EXPECT_NE(tail.find("test.sort.late"), std::string::npos);
}

TEST(FlightRecorder, ThreadChurnReclaimsParkedRings) {
  // Sequential short-lived threads must reuse parked rings, not grow
  // the registry without bound.
  const std::int64_t threads_before = flightrec::stats().threads;
  for (int i = 0; i < 16; ++i) {
    std::thread([] {
      flightrec::record(make_event("test.churn", ""));
    }).join();
  }
  const flightrec::Stats stats = flightrec::stats();
  // All 16 ran one-at-a-time: at most one new ring was ever needed.
  EXPECT_LE(stats.threads - threads_before, 1);
}

// ---------------------------------------------------------------------------
// Dump schema

TEST(FlightRecorder, DumpJsonSchemaAndEscaping) {
  flightrec::record(
      make_event("test.schema", "msg=a\"quote\" back\\slash\ttab"));
  const std::string dump = flightrec::dump_string("schema_test");
  EXPECT_EQ(dump.find("{\"flightrec\":{"), 0u);
  for (const char* key :
       {"\"reason\":\"schema_test\"", "\"pid\":", "\"recorded\":",
        "\"ring_capacity\":256", "\"threads\":[", "\"tid\":",
        "\"events\":[", "\"ts\":", "\"level\":\"info\"",
        "\"event\":\"test.schema\""}) {
    EXPECT_NE(dump.find(key), std::string::npos) << key;
  }
  // The writer escapes quotes/backslashes and control chars, so the
  // document stays valid JSON whatever lands in a detail string.
  EXPECT_NE(dump.find("a\\\"quote\\\""), std::string::npos);
  EXPECT_NE(dump.find("back\\\\slash"), std::string::npos);
  EXPECT_NE(dump.find("\\u0009tab"), std::string::npos);
}

TEST(FlightRecorder, DumpFileWritesTheSameDocument) {
  const std::string path = ::testing::TempDir() + "/capsp_frdump.json";
  flightrec::record(make_event("test.dumpfile", "x=1"));
  ASSERT_TRUE(flightrec::dump_file(path, "file_test"));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string dump = buffer.str();
  EXPECT_EQ(dump.find("{\"flightrec\":{"), 0u);
  EXPECT_NE(dump.find("\"reason\":\"file_test\""), std::string::npos);
  EXPECT_NE(dump.find("test.dumpfile"), std::string::npos);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// CHECK-failure enrichment (util/check.cpp)

TEST(CheckFailure, MessageCarriesThreadIdAndScopeStack) {
  try {
    ProfScope outer("test.check.outer");
    ProfScope inner("test.check.inner");
    CAPSP_CHECK_MSG(false, "deliberate");
    FAIL() << "CHECK did not throw";
  } catch (const check_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("deliberate"), std::string::npos);
    EXPECT_NE(what.find("[tid "), std::string::npos);
    EXPECT_NE(what.find("scopes: test.check.outer test.check.inner"),
              std::string::npos)
        << what;
  }
}

TEST(CheckFailure, ScopeStackIsMaintainedEvenWithoutProfiling) {
  // PR8 made ProfScope push frames unconditionally so CHECK context is
  // never empty outside profiling sessions; timing stays gated.
  ASSERT_FALSE(Profiler::global().running());
  try {
    ProfScope scope("test.check.unprofiled");
    CAPSP_CHECK_MSG(false, "x");
  } catch (const check_error& e) {
    EXPECT_NE(std::string(e.what()).find("test.check.unprofiled"),
              std::string::npos);
  }
}

TEST(CheckFailure, RecordsARingEventWithTheFailedExpression) {
  try {
    CAPSP_CHECK_MSG(1 == 2, "never");
  } catch (const check_error&) {
  }
  const std::string recent = flightrec::recent_events_json(16);
  EXPECT_NE(recent.find("check.failed"), std::string::npos);
  EXPECT_NE(recent.find("1 == 2"), std::string::npos);
}

// ---------------------------------------------------------------------------
// The acceptance scenario: a chaos-style service dump tells the story.

TEST(FlightRecorder, ChaosServiceDumpNamesFaultsQuarantineAndRequests) {
  // Ring-only capture at trace level, exactly as serve_tool arms it
  // when a fault plan is active; the sink stays quiet.
  const LogLevel ring_before = Logger::global().ring_level();
  Logger::global().set_ring_level(LogLevel::kTrace);

  Rng rng(42);
  const Graph graph = make_grid2d(8, 8, rng);
  const DistBlock matrix = reference_apsp(graph);
  // File-backed on purpose: injected read faults only bite on real IO.
  const std::string path = ::testing::TempDir() + "/capsp_frchaos_" +
                           std::to_string(::getpid()) + ".snap";
  write_snapshot(path, matrix, 8);
  const auto reader = std::make_shared<SnapshotReader>(path);

  // Tile 0 is a permanent bad sector: one failed 1-attempt fetch
  // quarantines it for the rest of the run.
  ServeFaultPlan plan;
  plan.bad_tile = 0;
  plan.bad_tile_fails = 1000000;
  ServeOptions options;
  options.threads = 2;
  options.retry.max_attempts = 1;
  options.quarantine.threshold = 1;
  options.quarantine.cooldown_ms = 1e9;
  options.trace_sample_every = 1;  // every request carries a trace id
  options.fault_injector = std::make_shared<ServeFaultInjector>(plan);
  DistanceService service(reader, graph, options);

  EXPECT_EQ(service.distance(0, 1).error, ServeError::kDegraded);
  EXPECT_EQ(service.distance(0, 1).error, ServeError::kDegraded);
  const DistanceReply healthy = service.distance(63, 62);
  EXPECT_EQ(healthy.error, ServeError::kOk);
  EXPECT_EQ(healthy.distance, matrix.at(63, 62));
  service.stop();
  Logger::global().set_ring_level(ring_before);
  std::remove(path.c_str());

  // The post-mortem story, in one dump: the injected fault, the
  // quarantine transition, and the request-scoped job events.
  const std::string dump = flightrec::dump_string("chaos_test");
  EXPECT_NE(dump.find("serve.fault.inject"), std::string::npos);
  EXPECT_NE(dump.find("kind=bad_tile_eio"), std::string::npos);
  EXPECT_NE(dump.find("serve.quarantine.enter"), std::string::npos);
  EXPECT_NE(dump.find("serve.job.start"), std::string::npos);
  // In-flight request ids: the "req" key is only emitted for events
  // recorded inside a LogRequestScope, so its presence is the claim.
  EXPECT_NE(dump.find("\"req\":"), std::string::npos)
      << "no event carried a request id";
}

// ---------------------------------------------------------------------------
// TSan soak: emission × thread churn × concurrent scrapes (the
// acceptance criterion runs this under the sanitizer matrix).

TEST(FlightRecorderSoak, ConcurrentRecordDumpAndChurn) {
  // One deterministic event up front: under heavy CPU oversubscription
  // the scrape loop below can finish before any writer is scheduled, so
  // the final recorded>0 assertion must not depend on thread timing.
  flightrec::record(make_event("test.soak.main", ""));
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  writers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&stop, t] {
      const LogRankScope rank(t);
      std::int64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        CAPSP_LOG(kDebug, "test.soak", {"i", i++});
      }
    });
  }
  std::thread churn([&stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      std::thread([] {
        flightrec::record(make_event("test.soak.churn", ""));
      }).join();
    }
  });
  // Concurrent scrapes: the /logs path and the on-demand dump path.
  for (int i = 0; i < 50; ++i) {
    const std::string recent = flightrec::recent_events_json(64);
    EXPECT_NE(recent.find("\"logs\""), std::string::npos);
    const std::string dump = flightrec::dump_string("soak");
    EXPECT_NE(dump.find("\"flightrec\""), std::string::npos);
  }
  stop.store(true);
  for (std::thread& w : writers) w.join();
  churn.join();
  EXPECT_GT(flightrec::stats().recorded, 0);
}

}  // namespace
}  // namespace capsp
