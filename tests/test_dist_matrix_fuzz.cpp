// Randomized tests of the distributed-matrix substrate: arbitrary grid
// shapes, windows, and redistribution chains, always checked against the
// gathered ground truth.  The DC baseline's correctness rides on these
// primitives, so they get their own fuzz pass.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "baseline/dist_matrix.hpp"
#include "semiring/kernels.hpp"
#include "util/rng.hpp"

namespace capsp {
namespace {

DistBlock random_matrix(std::int64_t rows, std::int64_t cols, Rng& rng) {
  DistBlock m(rows, cols);
  for (std::int64_t r = 0; r < rows; ++r)
    for (std::int64_t c = 0; c < cols; ++c)
      if (!rng.bernoulli(0.25)) m.at(r, c) = rng.uniform_real(0, 50);
  return m;
}

/// A random layout of the given window over a random subgrid of ranks
/// drawn from [0, p), with random (monotone) split points.
GridLayout random_layout(const IndexRect& window, int p, Rng& rng) {
  const int grid_rows =
      static_cast<int>(1 + rng.uniform(std::min(3, p)));
  const int grid_cols = static_cast<int>(
      1 + rng.uniform(static_cast<std::uint64_t>(
              std::min(3, p / grid_rows))));
  // Choose distinct ranks.
  std::vector<RankId> pool(static_cast<std::size_t>(p));
  std::iota(pool.begin(), pool.end(), 0);
  for (std::size_t i = pool.size(); i > 1; --i)
    std::swap(pool[i - 1], pool[rng.uniform(i)]);
  pool.resize(static_cast<std::size_t>(grid_rows * grid_cols));

  auto random_offsets = [&](std::int64_t begin, std::int64_t end,
                            int parts) {
    std::vector<std::int64_t> offsets{begin};
    for (int i = 1; i < parts; ++i)
      offsets.push_back(
          begin + static_cast<std::int64_t>(rng.uniform(
                      static_cast<std::uint64_t>(end - begin + 1))));
    offsets.push_back(end);
    std::sort(offsets.begin(), offsets.end());
    return offsets;
  };
  return GridLayout(std::move(pool), grid_rows, grid_cols,
                    random_offsets(window.row_begin, window.row_end,
                                   grid_rows),
                    random_offsets(window.col_begin, window.col_end,
                                   grid_cols));
}

TEST(DistMatrixFuzz, RedistributeChainsPreserveContent) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    Rng rng(2200 + seed);
    const int p = static_cast<int>(6 + rng.uniform(7));
    const IndexRect window{0,
                           static_cast<std::int64_t>(4 + rng.uniform(13)),
                           0,
                           static_cast<std::int64_t>(4 + rng.uniform(13))};
    const DistBlock truth = random_matrix(window.rows(), window.cols(), rng);

    const GridLayout l0 = random_layout(window, p, rng);
    const GridLayout l1 = random_layout(window, p, rng);
    const GridLayout l2 = random_layout(window, p, rng);

    Machine machine(p);
    DistBlock gathered;
    machine.run([&](Comm& comm) {
      DistBlock local = scatter_matrix(comm, l0, truth, l0.ranks().front(),
                                       /*tag=*/0);
      DistBlock moved1 = redistribute(comm, l0, local, l1, 10000);
      DistBlock moved2 = redistribute(comm, l1, moved1, l2, 20000);
      const DistBlock full =
          gather_matrix(comm, l2, moved2, l2.ranks().front(), 30000);
      if (comm.rank() == l2.ranks().front()) gathered = full;
    });
    ASSERT_EQ(gathered, truth) << "seed " << seed;
  }
}

TEST(DistMatrixFuzz, ScatterGatherArbitraryRootsAndShapes) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(2600 + seed);
    const int p = static_cast<int>(4 + rng.uniform(6));
    const IndexRect window{0,
                           static_cast<std::int64_t>(3 + rng.uniform(10)),
                           0,
                           static_cast<std::int64_t>(3 + rng.uniform(10))};
    const GridLayout layout = random_layout(window, p, rng);
    const RankId scatter_root =
        layout.ranks()[rng.uniform(layout.ranks().size())];
    const RankId gather_root =
        layout.ranks()[rng.uniform(layout.ranks().size())];
    const DistBlock truth = random_matrix(window.rows(), window.cols(), rng);

    Machine machine(p);
    DistBlock gathered;
    machine.run([&](Comm& comm) {
      DistBlock local =
          scatter_matrix(comm, layout, truth, scatter_root, 0);
      const DistBlock full =
          gather_matrix(comm, layout, local, gather_root, 5000);
      if (comm.rank() == gather_root) gathered = full;
    });
    ASSERT_EQ(gathered, truth) << "seed " << seed;
  }
}

TEST(DistMatrixFuzz, SummaOnRandomSquareGridsMatchesLocal) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(3000 + seed);
    const int q = static_cast<int>(1 + rng.uniform(4));
    const int p = q * q;
    const auto n = static_cast<std::int64_t>(q + rng.uniform(12));
    const DistBlock a = random_matrix(n, n, rng);
    const DistBlock b = random_matrix(n, n, rng);
    DistBlock want(n, n);
    minplus_accumulate(want, a, b);

    std::vector<RankId> ranks(static_cast<std::size_t>(p));
    std::iota(ranks.begin(), ranks.end(), 0);
    const GridLayout layout = GridLayout::square(ranks, q, n);
    Machine machine(p);
    DistBlock got;
    machine.run([&](Comm& comm) {
      DistBlock la = scatter_matrix(comm, layout, a, 0, 0);
      DistBlock lb = scatter_matrix(comm, layout, b, 0, 1000);
      DistBlock lc = layout.make_local(comm.rank());
      summa_minplus(comm, layout, la, layout, lb, layout, lc, 2000);
      const DistBlock full = gather_matrix(comm, layout, lc, 0, 90000);
      if (comm.rank() == 0) got = full;
    });
    for (std::int64_t i = 0; i < n; ++i)
      for (std::int64_t j = 0; j < n; ++j) {
        if (is_inf(want.at(i, j))) {
          ASSERT_TRUE(is_inf(got.at(i, j))) << "seed " << seed;
        } else {
          ASSERT_NEAR(got.at(i, j), want.at(i, j), 1e-9) << "seed " << seed;
        }
      }
  }
}

}  // namespace
}  // namespace capsp
