// Tests for the serving layer (serve/service + serve/cache): bit-exact
// answers vs the distance matrix, cache eviction under a tight budget,
// structured overload/deadline/shutdown errors, k-nearest vs brute
// force, per-shard cache counters in the serve.* registry, request
// tracing through the service, and concurrent soaks — one plain, one
// with tracing on and a live telemetry scraper — for the sanitizer
// matrix.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "baseline/reference.hpp"
#include "core/path_oracle.hpp"
#include "graph/generators.hpp"
#include "serve/reqtrace.hpp"
#include "serve/service.hpp"
#include "serve/snapshot.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace capsp {
namespace {

struct Fixture {
  Graph graph;
  DistBlock matrix;
  std::shared_ptr<SnapshotReader> reader;
  std::string path;

  ~Fixture() {
    if (!path.empty()) std::remove(path.c_str());
  }
};

/// A solved grid served from a real CAPSPDB2 file with small tiles.
Fixture make_fixture(Vertex side, std::int64_t tile_dim,
                     bool file_backed = true) {
  Fixture f;
  Rng rng(42);
  f.graph = make_grid2d(side, side, rng);
  f.matrix = reference_apsp(f.graph);
  if (file_backed) {
    // Pid-unique: parallel ctest runs several test_serve processes, and
    // a shared path would let one process O_TRUNC a snapshot another is
    // mid-pread on (a real read error -> spurious quarantine/degraded).
    f.path = ::testing::TempDir() + "/capsp_serve_" +
             std::to_string(::getpid()) + "_" + std::to_string(side) +
             "_" + std::to_string(tile_dim) + ".snap";
    write_snapshot(f.path, f.matrix, tile_dim);
    f.reader = std::make_shared<SnapshotReader>(f.path);
  } else {
    f.reader = std::make_shared<SnapshotReader>(f.matrix, tile_dim);
  }
  return f;
}

/// One blocking HTTP/1.1 GET against 127.0.0.1:`port`; returns the raw
/// response (status line, headers, body) or "" on any socket failure.
std::string http_get(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n";
  if (::send(fd, request.data(), request.size(), 0) !=
      static_cast<ssize_t>(request.size())) {
    ::close(fd);
    return "";
  }
  std::string response;
  char buffer[4096];
  ssize_t got;
  while ((got = ::recv(fd, buffer, sizeof(buffer), 0)) > 0)
    response.append(buffer, static_cast<std::size_t>(got));
  ::close(fd);
  return response;
}

TEST(DistanceService, BitExactWithEvictingCache) {
  const Fixture f = make_fixture(8, 4);
  ServeOptions options;
  options.threads = 3;
  // Far below the 64x64 doubles of the matrix: forces eviction traffic.
  options.cache_bytes = 2048;
  DistanceService service(f.reader, f.graph, options);
  for (Vertex u = 0; u < f.graph.num_vertices(); ++u)
    for (Vertex v = 0; v < f.graph.num_vertices(); ++v) {
      const DistanceReply reply = service.distance(u, v);
      ASSERT_EQ(reply.error, ServeError::kOk);
      ASSERT_EQ(reply.distance, f.matrix.at(u, v)) << u << "," << v;
    }
  const TileCache::Stats stats = service.cache_stats();
  EXPECT_GT(stats.evictions, 0);
  EXPECT_LE(stats.bytes, options.cache_bytes);
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::int64_t>(f.graph.num_vertices()) *
                f.graph.num_vertices());
}

TEST(DistanceService, PathsMatchThePathOracle) {
  const Fixture f = make_fixture(6, 4);
  DistanceService service(f.reader, f.graph);
  const PathOracle oracle(f.graph, f.matrix);
  for (Vertex u = 0; u < f.graph.num_vertices(); u += 5)
    for (Vertex v = 0; v < f.graph.num_vertices(); v += 3) {
      const PathReply reply = service.shortest_path(u, v);
      ASSERT_EQ(reply.error, ServeError::kOk);
      EXPECT_EQ(reply.distance, f.matrix.at(u, v));
      EXPECT_EQ(reply.path, oracle.shortest_path(u, v));
    }
}

TEST(DistanceService, UnreachableIsAnAnswerNotAnError) {
  GraphBuilder builder(4);
  builder.add_edge(0, 1, 1);
  builder.add_edge(2, 3, 1);
  Graph graph = std::move(builder).build();
  auto reader =
      std::make_shared<SnapshotReader>(reference_apsp(graph), 2);
  DistanceService service(reader, graph);
  const DistanceReply reply = service.distance(0, 2);
  EXPECT_EQ(reply.error, ServeError::kOk);
  EXPECT_TRUE(is_inf(reply.distance));
  const PathReply path = service.shortest_path(0, 2);
  EXPECT_EQ(path.error, ServeError::kOk);
  EXPECT_TRUE(path.path.empty());
}

TEST(DistanceService, KNearestMatchesBruteForce) {
  const Fixture f = make_fixture(7, 8, /*file_backed=*/false);
  DistanceService service(f.reader, f.graph);
  const Vertex n = f.graph.num_vertices();
  for (const Vertex u : {Vertex{0}, Vertex{17}, Vertex{n - 1}}) {
    for (const int k : {1, 5, static_cast<int>(n) + 10}) {
      const KNearestReply reply = service.k_nearest(u, k);
      ASSERT_EQ(reply.error, ServeError::kOk);
      std::vector<NearVertex> expected;
      for (Vertex v = 0; v < n; ++v)
        if (v != u && !is_inf(f.matrix.at(u, v)))
          expected.push_back({v, f.matrix.at(u, v)});
      std::sort(expected.begin(), expected.end(),
                [](const NearVertex& a, const NearVertex& b) {
                  return std::tie(a.distance, a.vertex) <
                         std::tie(b.distance, b.vertex);
                });
      if (expected.size() > static_cast<std::size_t>(k))
        expected.resize(static_cast<std::size_t>(k));
      EXPECT_EQ(reply.nearest, expected) << "u=" << u << " k=" << k;
    }
  }
}

TEST(DistanceService, BatchMatchesSingles) {
  const Fixture f = make_fixture(5, 4);
  DistanceService service(f.reader, f.graph);
  std::vector<std::pair<Vertex, Vertex>> pairs;
  for (Vertex u = 0; u < 25; u += 2) pairs.push_back({u, 24 - u});
  const std::vector<DistanceReply> replies = service.distance_batch(pairs);
  ASSERT_EQ(replies.size(), pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(replies[i].error, ServeError::kOk);
    EXPECT_EQ(replies[i].distance,
              f.matrix.at(pairs[i].first, pairs[i].second));
  }
}

TEST(DistanceService, OverloadedQueueRejectsStructurally) {
  const Fixture f = make_fixture(4, 4, /*file_backed=*/false);
  ServeOptions options;
  options.threads = 1;
  options.max_queue = 0;  // admission bound of zero: every request rejected
  DistanceService service(f.reader, f.graph, options);
  const DistanceReply reply = service.distance(0, 3);
  EXPECT_EQ(reply.error, ServeError::kOverloaded);
  EXPECT_EQ(std::string(to_string(ServeError::kOverloaded)), "overloaded");
}

TEST(DistanceService, ExpiredDeadlineIsReported) {
  const Fixture f = make_fixture(4, 4, /*file_backed=*/false);
  DistanceService service(f.reader, f.graph);
  // A deadline of 1ns is in the past by the time a worker dequeues.
  const DistanceReply reply = service.distance(0, 3, 1e-9);
  EXPECT_EQ(reply.error, ServeError::kDeadlineExceeded);
}

TEST(DistanceService, ShutdownRejectsNewWork) {
  const Fixture f = make_fixture(4, 4, /*file_backed=*/false);
  DistanceService service(f.reader, f.graph);
  EXPECT_EQ(service.distance(0, 1).error, ServeError::kOk);
  service.stop();
  EXPECT_EQ(service.distance(0, 1).error, ServeError::kShutdown);
  service.stop();  // idempotent
}

TEST(DistanceService, MetricsCoverTheRun) {
  const Fixture f = make_fixture(5, 4);
  DistanceService service(f.reader, f.graph);
  for (Vertex v = 0; v < 25; ++v) service.distance(0, v);
  service.shortest_path(0, 24);
  service.k_nearest(12, 3);
  const MetricsSnapshot snapshot = service.metrics_snapshot();
  ASSERT_TRUE(snapshot.count("serve.request.latency_us"));
  EXPECT_EQ(snapshot.at("serve.request.latency_us").histogram.count, 27);
  EXPECT_EQ(snapshot.at("serve.request.distance").counter, 25);
  EXPECT_EQ(snapshot.at("serve.request.path").counter, 1);
  EXPECT_EQ(snapshot.at("serve.request.knear").counter, 1);
  EXPECT_EQ(snapshot.at("serve.request.ok").counter, 27);
  EXPECT_GT(snapshot.at("serve.io.tiles_loaded").counter, 0);
  EXPECT_GT(snapshot.at("serve.io.bytes_read").counter, 0);
  std::ostringstream summary;
  service.write_summary_json(summary);
  EXPECT_NE(summary.str().find("\"serve\""), std::string::npos);
  EXPECT_NE(summary.str().find("\"latency_us\""), std::string::npos);
  // Merging into an outer registry must carry the counts across.
  MetricsRegistry outer;
  service.merge_metrics_into(outer);
  EXPECT_EQ(outer.snapshot().at("serve.request.distance").counter, 25);
}

// Sanitizer target: many clients hammering one service with mixed query
// types and an eviction-heavy cache.  Correctness of each answer is still
// asserted, so this doubles as a race detector for the cache/queue and a
// use-after-evict check on shared tiles.
TEST(DistanceServiceSoak, ConcurrentMixedQueries) {
  const Fixture f = make_fixture(9, 4);
  ServeOptions options;
  options.threads = 4;
  options.cache_bytes = 4096;
  DistanceService service(f.reader, f.graph, options);
  const PathOracle oracle(f.graph, f.matrix);
  constexpr int kClients = 6;
  constexpr int kPerClient = 300;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(static_cast<std::uint64_t>(c) + 1);
      const auto n = static_cast<std::uint64_t>(f.graph.num_vertices());
      for (int i = 0; i < kPerClient; ++i) {
        const auto u = static_cast<Vertex>(rng.uniform(n));
        const auto v = static_cast<Vertex>(rng.uniform(n));
        switch (i % 3) {
          case 0: {
            const DistanceReply reply = service.distance(u, v);
            ASSERT_EQ(reply.error, ServeError::kOk);
            ASSERT_EQ(reply.distance, f.matrix.at(u, v));
            break;
          }
          case 1: {
            const PathReply reply = service.shortest_path(u, v);
            ASSERT_EQ(reply.error, ServeError::kOk);
            ASSERT_EQ(reply.distance, f.matrix.at(u, v));
            if (!reply.path.empty()) {
              ASSERT_NEAR(oracle.path_weight(reply.path),
                          f.matrix.at(u, v), 1e-9);
            }
            break;
          }
          default: {
            const KNearestReply reply = service.k_nearest(u, 4);
            ASSERT_EQ(reply.error, ServeError::kOk);
            ASSERT_LE(reply.nearest.size(), 4u);
            break;
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const TileCache::Stats stats = service.cache_stats();
  EXPECT_GT(stats.evictions, 0);
  EXPECT_EQ(service.metrics_snapshot().at("serve.request.ok").counter,
            kClients * kPerClient);
}

// Sanitizer target for the observability paths: clients hammer a traced
// service (sampling + slow log + sub-second windows, so slices rotate
// mid-run) while a scraper thread reads /metrics, /healthz, and
// /stats.json off the live telemetry endpoint.  Exercises every
// new lock order: trace routing, window rotation, SLO recording, and
// handler reads racing request recording.
TEST(DistanceServiceSoak, TelemetryScrapeWhileTracedClientsRun) {
  const Fixture f = make_fixture(9, 4);
  ServeOptions options;
  options.threads = 4;
  options.cache_bytes = 4096;
  options.trace_sample_every = 5;
  options.slow_trace_ms = 1e-6;  // everything is "slow": max ring churn
  options.window_seconds = 0.2;  // force rotation many times per soak
  options.window_slices = 4;
  options.slo.latency_ms = 100;
  options.slo.window_seconds = 0.2;
  options.slo.window_slices = 4;
  DistanceService service(f.reader, f.graph, options);
  const int port = service.start_telemetry(0);
  ASSERT_GT(port, 0);
  EXPECT_EQ(service.telemetry_port(), port);

  constexpr int kClients = 4;
  constexpr int kPerClient = 250;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(static_cast<std::uint64_t>(c) + 99);
      const auto n = static_cast<std::uint64_t>(f.graph.num_vertices());
      for (int i = 0; i < kPerClient; ++i) {
        const auto u = static_cast<Vertex>(rng.uniform(n));
        const auto v = static_cast<Vertex>(rng.uniform(n));
        if (i % 2 == 0) {
          const DistanceReply reply = service.distance(u, v);
          EXPECT_EQ(reply.error, ServeError::kOk);
          EXPECT_EQ(reply.distance, f.matrix.at(u, v));
        } else {
          const PathReply reply = service.shortest_path(u, v);
          EXPECT_EQ(reply.error, ServeError::kOk);
          EXPECT_EQ(reply.distance, f.matrix.at(u, v));
        }
      }
    });
  }
  std::thread scraper([&] {
    for (int i = 0; i < 40; ++i) {
      const std::string health = http_get(port, "/healthz");
      EXPECT_NE(health.find("HTTP/1.1 200"), std::string::npos);
      EXPECT_NE(health.find("ok"), std::string::npos);
      const std::string metrics = http_get(port, "/metrics");
      EXPECT_NE(metrics.find("HTTP/1.1 200"), std::string::npos);
      const std::string stats = http_get(port, "/stats.json");
      EXPECT_NE(stats.find("HTTP/1.1 200"), std::string::npos);
    }
    EXPECT_NE(http_get(port, "/no-such-path").find("HTTP/1.1 404"),
              std::string::npos);
  });
  for (std::thread& t : clients) t.join();
  scraper.join();

  // A final scrape after the load: the exposition must carry the serve
  // metrics (aggregate and per-shard) and the JSON its new sections.
  const std::string metrics = http_get(port, "/metrics");
  EXPECT_NE(metrics.find("# TYPE capsp_serve_request_latency_us histogram"),
            std::string::npos);
  EXPECT_NE(metrics.find("capsp_serve_request_latency_us_count"),
            std::string::npos);
  EXPECT_NE(metrics.find("capsp_serve_cache_shard0_hit"), std::string::npos);
  const std::string stats_json = http_get(port, "/stats.json");
  EXPECT_NE(stats_json.find("\"windows\""), std::string::npos);
  EXPECT_NE(stats_json.find("\"slo\""), std::string::npos);

  service.stop();  // also joins the telemetry thread
  constexpr std::int64_t kTotal = kClients * kPerClient;
  EXPECT_EQ(service.metrics_snapshot().at("serve.request.ok").counter, kTotal);
  const RequestTraceLog::Stats trace_stats = service.trace_log().stats();
  EXPECT_EQ(trace_stats.started, kTotal);  // slow log armed: all traced
  EXPECT_EQ(trace_stats.slow, kTotal);
  const SloTracker::Snapshot slo = service.slo_snapshot();
  EXPECT_EQ(slo.availability.total, kTotal);
  EXPECT_EQ(slo.availability.good, kTotal);
  // The per-shard counters stay consistent under concurrency too.
  const TileCache::Stats total = service.cache_stats();
  TileCache::Stats sum;
  for (const TileCache::Stats& s : service.cache_shard_stats()) {
    sum.hits += s.hits;
    sum.misses += s.misses;
    sum.evictions += s.evictions;
  }
  EXPECT_EQ(sum.hits, total.hits);
  EXPECT_EQ(sum.misses, total.misses);
  EXPECT_EQ(sum.evictions, total.evictions);
  // Stopped service: the endpoint is down, a fresh GET cannot connect.
  EXPECT_EQ(http_get(port, "/healthz"), "");
}

TEST(TileCache, LruEvictsColdTilesFirst) {
  MetricsRegistry registry;
  TileCacheOptions options;
  options.shards = 1;  // single shard makes the LRU order observable
  options.byte_budget =
      3 * (64 + 4 * static_cast<std::int64_t>(sizeof(Dist)));
  TileCache cache(options, registry);
  auto tile = [] {
    DistBlock t(2, 2);
    t.zero_diagonal();
    return t;
  };
  cache.put(0, tile());
  cache.put(1, tile());
  cache.put(2, tile());
  EXPECT_NE(cache.get(0), nullptr);  // refresh 0: now 1 is the coldest
  cache.put(3, tile());              // evicts 1
  EXPECT_NE(cache.get(0), nullptr);
  EXPECT_EQ(cache.get(1), nullptr);
  EXPECT_NE(cache.get(3), nullptr);
  EXPECT_GT(cache.stats().evictions, 0);
}

TEST(TileCache, PerShardCountersMatchAggregateAndRegistry) {
  MetricsRegistry registry;
  TileCacheOptions options;
  options.shards = 4;
  // Room for roughly one 2x2 tile per shard: inserts beyond that evict.
  options.byte_budget =
      4 * (TileCache::kEntryOverheadBytes +
           4 * static_cast<std::int64_t>(sizeof(Dist)));
  TileCache cache(options, registry);
  for (std::int64_t id = 0; id < 12; ++id) {
    cache.put(id, DistBlock(2, 2));
    cache.get(id);      // hit: just inserted, still resident
    cache.get(id + 1);  // miss: not inserted yet (or evicted)
  }
  const TileCache::Stats total = cache.stats();
  const std::vector<TileCache::Stats> shards = cache.shard_stats();
  ASSERT_EQ(shards.size(), 4u);
  ASSERT_EQ(cache.num_shards(), 4);
  TileCache::Stats sum;
  for (const TileCache::Stats& s : shards) {
    sum.hits += s.hits;
    sum.misses += s.misses;
    sum.evictions += s.evictions;
    sum.bytes += s.bytes;
    sum.entries += s.entries;
  }
  EXPECT_EQ(sum.hits, total.hits);
  EXPECT_EQ(sum.misses, total.misses);
  EXPECT_EQ(sum.evictions, total.evictions);
  EXPECT_EQ(sum.bytes, total.bytes);
  EXPECT_EQ(sum.entries, total.entries);
  EXPECT_GT(total.hits, 0);
  EXPECT_GT(total.misses, 0);
  EXPECT_GT(total.evictions, 0);

  // The same numbers must land in the registry: aggregate counters, one
  // serve.cache.shard<j>.* set per shard, and the occupancy gauges.
  const MetricsSnapshot snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.at("serve.cache.hit").counter, total.hits);
  EXPECT_EQ(snapshot.at("serve.cache.miss").counter, total.misses);
  EXPECT_EQ(snapshot.at("serve.cache.eviction").counter, total.evictions);
  EXPECT_EQ(snapshot.at("serve.cache.bytes").gauge,
            static_cast<double>(total.bytes));
  EXPECT_EQ(snapshot.at("serve.cache.entries").gauge,
            static_cast<double>(total.entries));
  for (std::size_t j = 0; j < shards.size(); ++j) {
    const std::string base = "serve.cache.shard" + std::to_string(j);
    // A counter only exists once incremented, so gate on the shard count.
    if (shards[j].hits > 0) {
      EXPECT_EQ(snapshot.at(base + ".hit").counter, shards[j].hits) << base;
    }
    if (shards[j].misses > 0) {
      EXPECT_EQ(snapshot.at(base + ".miss").counter, shards[j].misses) << base;
    }
    if (shards[j].evictions > 0) {
      EXPECT_EQ(snapshot.at(base + ".eviction").counter, shards[j].evictions)
          << base;
    }
  }
}

TEST(DistanceService, SampledTracesCarryTheFullSpanTree) {
  const Fixture f = make_fixture(6, 4);
  ServeOptions options;
  options.threads = 2;
  options.cache_bytes = 2048;  // tight: traces should see real misses
  options.trace_sample_every = 1;  // every request sampled
  DistanceService service(f.reader, f.graph, options);
  constexpr int kRequests = 24;
  for (Vertex v = 0; v < kRequests; ++v) service.distance(0, v);
  service.shortest_path(0, 35);
  service.stop();  // joins workers: every finished trace is now routed

  const RequestTraceLog::Stats stats = service.trace_log().stats();
  EXPECT_EQ(stats.started, kRequests + 1);
  EXPECT_EQ(stats.sampled_kept, kRequests + 1);
  EXPECT_EQ(stats.dropped, 0);
  const auto kept = service.trace_log().kept();
  ASSERT_EQ(kept.size(), static_cast<std::size_t>(kRequests) + 1);
  bool saw_tile_span = false, saw_hop_span = false;
  for (const auto& trace : kept) {
    EXPECT_STREQ(trace->outcome(), "ok");
    EXPECT_GT(trace->total_us(), 0);
    ASSERT_GE(trace->spans().size(), 2u);
    // The lifecycle skeleton: span 0 is queue_wait, span 1 is execute,
    // and every span is closed within the request.
    EXPECT_STREQ(trace->spans()[0].name, "queue_wait");
    EXPECT_STREQ(trace->spans()[1].name, "execute");
    double child_sum = 0;
    for (const TraceSpan& span : trace->spans()) {
      EXPECT_GE(span.end_us, span.start_us);
      EXPECT_LE(span.end_us, trace->total_us() + 1.0);
      if (span.parent == -1) child_sum += span.end_us - span.start_us;
      const std::string name = span.name;
      if (name == "tile.cache_hit" || name == "tile.cache_miss")
        saw_tile_span = true;
      if (name == "path.hop") saw_hop_span = true;
    }
    // Top-level spans (queue_wait + execute) tile the request end to end.
    EXPECT_NEAR(child_sum, trace->total_us(), 2.0) << "trace " << trace->id();
  }
  EXPECT_TRUE(saw_tile_span);
  EXPECT_TRUE(saw_hop_span);

  std::ostringstream chrome;
  service.trace_log().write_chrome_json(chrome);
  const std::string doc = chrome.str();
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"queue_wait\""), std::string::npos);
  EXPECT_NE(doc.find("\"reqtrace\""), std::string::npos);
}

TEST(DistanceService, SlowLogKeepsTracesSamplingWouldDrop) {
  const Fixture f = make_fixture(5, 4, /*file_backed=*/false);
  ServeOptions options;
  options.threads = 1;
  options.trace_sample_every = 0;   // sampling off...
  options.slow_trace_ms = 1e-6;     // ...but everything counts as slow
  options.slow_trace_keep = 8;
  DistanceService service(f.reader, f.graph, options);
  constexpr int kRequests = 20;
  for (Vertex v = 0; v < kRequests; ++v) service.distance(v, 0);
  service.stop();
  const RequestTraceLog::Stats stats = service.trace_log().stats();
  EXPECT_EQ(stats.started, kRequests);  // slow log arms tracing for all
  EXPECT_EQ(stats.slow, kRequests);
  EXPECT_EQ(stats.sampled_kept, 0);
  // The ring is bounded: only the newest slow_trace_keep survive.
  EXPECT_EQ(service.trace_log().kept().size(), 8u);
  EXPECT_EQ(service.metrics_snapshot().at("serve.trace.slow").counter,
            kRequests);
}

TEST(DistanceService, SummaryJsonCarriesWindowsSloAndTraceSections) {
  const Fixture f = make_fixture(5, 4, /*file_backed=*/false);
  ServeOptions options;
  options.trace_sample_every = 4;
  options.slo.latency_ms = 50;
  DistanceService service(f.reader, f.graph, options);
  for (Vertex v = 0; v < 25; ++v) service.distance(0, v);
  service.stop();
  std::ostringstream out;
  service.write_summary_json(out);
  const std::string json = out.str();
  for (const char* key :
       {"\"windows\"", "\"slo\"", "\"reqtrace\"", "\"shards\"",
        "\"availability\"", "\"burn_rate\""})
    EXPECT_NE(json.find(key), std::string::npos) << key;
  const SloTracker::Snapshot slo = service.slo_snapshot();
  EXPECT_EQ(slo.availability.total, 25);
  EXPECT_EQ(slo.availability.good, 25);
  EXPECT_EQ(slo.availability.compliance, 1.0);
  EXPECT_TRUE(slo.latency.enabled);
  EXPECT_EQ(service.latency_window().count, 25);
}

TEST(TileCache, SharedTileSurvivesEviction) {
  MetricsRegistry registry;
  TileCacheOptions options;
  options.shards = 1;
  options.byte_budget = 1;  // at most one resident entry, always over budget
  TileCache cache(options, registry);
  DistBlock t(2, 2);
  t.at(0, 1) = 7;
  const std::shared_ptr<const DistBlock> held = cache.put(10, std::move(t));
  cache.put(11, DistBlock(2, 2));  // evicts tile 10
  EXPECT_EQ(cache.get(10), nullptr);
  // The caller's reference keeps the evicted tile alive and intact.
  EXPECT_EQ(held->at(0, 1), 7);
}

}  // namespace
}  // namespace capsp
