// Tests for the serving layer (serve/service + serve/cache): bit-exact
// answers vs the distance matrix, cache eviction under a tight budget,
// structured overload/deadline/shutdown errors, k-nearest vs brute
// force, and a concurrent mixed-query soak for the sanitizer matrix.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "baseline/reference.hpp"
#include "core/path_oracle.hpp"
#include "graph/generators.hpp"
#include "serve/service.hpp"
#include "serve/snapshot.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace capsp {
namespace {

struct Fixture {
  Graph graph;
  DistBlock matrix;
  std::shared_ptr<SnapshotReader> reader;
  std::string path;

  ~Fixture() {
    if (!path.empty()) std::remove(path.c_str());
  }
};

/// A solved grid served from a real CAPSPDB2 file with small tiles.
Fixture make_fixture(Vertex side, std::int64_t tile_dim,
                     bool file_backed = true) {
  Fixture f;
  Rng rng(42);
  f.graph = make_grid2d(side, side, rng);
  f.matrix = reference_apsp(f.graph);
  if (file_backed) {
    f.path = ::testing::TempDir() + "/capsp_serve_" +
             std::to_string(side) + "_" + std::to_string(tile_dim) + ".snap";
    write_snapshot(f.path, f.matrix, tile_dim);
    f.reader = std::make_shared<SnapshotReader>(f.path);
  } else {
    f.reader = std::make_shared<SnapshotReader>(f.matrix, tile_dim);
  }
  return f;
}

TEST(DistanceService, BitExactWithEvictingCache) {
  const Fixture f = make_fixture(8, 4);
  ServeOptions options;
  options.threads = 3;
  // Far below the 64x64 doubles of the matrix: forces eviction traffic.
  options.cache_bytes = 2048;
  DistanceService service(f.reader, f.graph, options);
  for (Vertex u = 0; u < f.graph.num_vertices(); ++u)
    for (Vertex v = 0; v < f.graph.num_vertices(); ++v) {
      const DistanceReply reply = service.distance(u, v);
      ASSERT_EQ(reply.error, ServeError::kOk);
      ASSERT_EQ(reply.distance, f.matrix.at(u, v)) << u << "," << v;
    }
  const TileCache::Stats stats = service.cache_stats();
  EXPECT_GT(stats.evictions, 0);
  EXPECT_LE(stats.bytes, options.cache_bytes);
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::int64_t>(f.graph.num_vertices()) *
                f.graph.num_vertices());
}

TEST(DistanceService, PathsMatchThePathOracle) {
  const Fixture f = make_fixture(6, 4);
  DistanceService service(f.reader, f.graph);
  const PathOracle oracle(f.graph, f.matrix);
  for (Vertex u = 0; u < f.graph.num_vertices(); u += 5)
    for (Vertex v = 0; v < f.graph.num_vertices(); v += 3) {
      const PathReply reply = service.shortest_path(u, v);
      ASSERT_EQ(reply.error, ServeError::kOk);
      EXPECT_EQ(reply.distance, f.matrix.at(u, v));
      EXPECT_EQ(reply.path, oracle.shortest_path(u, v));
    }
}

TEST(DistanceService, UnreachableIsAnAnswerNotAnError) {
  GraphBuilder builder(4);
  builder.add_edge(0, 1, 1);
  builder.add_edge(2, 3, 1);
  Graph graph = std::move(builder).build();
  auto reader =
      std::make_shared<SnapshotReader>(reference_apsp(graph), 2);
  DistanceService service(reader, graph);
  const DistanceReply reply = service.distance(0, 2);
  EXPECT_EQ(reply.error, ServeError::kOk);
  EXPECT_TRUE(is_inf(reply.distance));
  const PathReply path = service.shortest_path(0, 2);
  EXPECT_EQ(path.error, ServeError::kOk);
  EXPECT_TRUE(path.path.empty());
}

TEST(DistanceService, KNearestMatchesBruteForce) {
  const Fixture f = make_fixture(7, 8, /*file_backed=*/false);
  DistanceService service(f.reader, f.graph);
  const Vertex n = f.graph.num_vertices();
  for (const Vertex u : {Vertex{0}, Vertex{17}, Vertex{n - 1}}) {
    for (const int k : {1, 5, static_cast<int>(n) + 10}) {
      const KNearestReply reply = service.k_nearest(u, k);
      ASSERT_EQ(reply.error, ServeError::kOk);
      std::vector<NearVertex> expected;
      for (Vertex v = 0; v < n; ++v)
        if (v != u && !is_inf(f.matrix.at(u, v)))
          expected.push_back({v, f.matrix.at(u, v)});
      std::sort(expected.begin(), expected.end(),
                [](const NearVertex& a, const NearVertex& b) {
                  return std::tie(a.distance, a.vertex) <
                         std::tie(b.distance, b.vertex);
                });
      if (expected.size() > static_cast<std::size_t>(k))
        expected.resize(static_cast<std::size_t>(k));
      EXPECT_EQ(reply.nearest, expected) << "u=" << u << " k=" << k;
    }
  }
}

TEST(DistanceService, BatchMatchesSingles) {
  const Fixture f = make_fixture(5, 4);
  DistanceService service(f.reader, f.graph);
  std::vector<std::pair<Vertex, Vertex>> pairs;
  for (Vertex u = 0; u < 25; u += 2) pairs.push_back({u, 24 - u});
  const std::vector<DistanceReply> replies = service.distance_batch(pairs);
  ASSERT_EQ(replies.size(), pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(replies[i].error, ServeError::kOk);
    EXPECT_EQ(replies[i].distance,
              f.matrix.at(pairs[i].first, pairs[i].second));
  }
}

TEST(DistanceService, OverloadedQueueRejectsStructurally) {
  const Fixture f = make_fixture(4, 4, /*file_backed=*/false);
  ServeOptions options;
  options.threads = 1;
  options.max_queue = 0;  // admission bound of zero: every request rejected
  DistanceService service(f.reader, f.graph, options);
  const DistanceReply reply = service.distance(0, 3);
  EXPECT_EQ(reply.error, ServeError::kOverloaded);
  EXPECT_EQ(std::string(to_string(ServeError::kOverloaded)), "overloaded");
}

TEST(DistanceService, ExpiredDeadlineIsReported) {
  const Fixture f = make_fixture(4, 4, /*file_backed=*/false);
  DistanceService service(f.reader, f.graph);
  // A deadline of 1ns is in the past by the time a worker dequeues.
  const DistanceReply reply = service.distance(0, 3, 1e-9);
  EXPECT_EQ(reply.error, ServeError::kDeadlineExceeded);
}

TEST(DistanceService, ShutdownRejectsNewWork) {
  const Fixture f = make_fixture(4, 4, /*file_backed=*/false);
  DistanceService service(f.reader, f.graph);
  EXPECT_EQ(service.distance(0, 1).error, ServeError::kOk);
  service.stop();
  EXPECT_EQ(service.distance(0, 1).error, ServeError::kShutdown);
  service.stop();  // idempotent
}

TEST(DistanceService, MetricsCoverTheRun) {
  const Fixture f = make_fixture(5, 4);
  DistanceService service(f.reader, f.graph);
  for (Vertex v = 0; v < 25; ++v) service.distance(0, v);
  service.shortest_path(0, 24);
  service.k_nearest(12, 3);
  const MetricsSnapshot snapshot = service.metrics_snapshot();
  ASSERT_TRUE(snapshot.count("serve.request.latency_us"));
  EXPECT_EQ(snapshot.at("serve.request.latency_us").histogram.count, 27);
  EXPECT_EQ(snapshot.at("serve.request.distance").counter, 25);
  EXPECT_EQ(snapshot.at("serve.request.path").counter, 1);
  EXPECT_EQ(snapshot.at("serve.request.knear").counter, 1);
  EXPECT_EQ(snapshot.at("serve.request.ok").counter, 27);
  EXPECT_GT(snapshot.at("serve.io.tiles_loaded").counter, 0);
  EXPECT_GT(snapshot.at("serve.io.bytes_read").counter, 0);
  std::ostringstream summary;
  service.write_summary_json(summary);
  EXPECT_NE(summary.str().find("\"serve\""), std::string::npos);
  EXPECT_NE(summary.str().find("\"latency_us\""), std::string::npos);
  // Merging into an outer registry must carry the counts across.
  MetricsRegistry outer;
  service.merge_metrics_into(outer);
  EXPECT_EQ(outer.snapshot().at("serve.request.distance").counter, 25);
}

// Sanitizer target: many clients hammering one service with mixed query
// types and an eviction-heavy cache.  Correctness of each answer is still
// asserted, so this doubles as a race detector for the cache/queue and a
// use-after-evict check on shared tiles.
TEST(DistanceServiceSoak, ConcurrentMixedQueries) {
  const Fixture f = make_fixture(9, 4);
  ServeOptions options;
  options.threads = 4;
  options.cache_bytes = 4096;
  DistanceService service(f.reader, f.graph, options);
  const PathOracle oracle(f.graph, f.matrix);
  constexpr int kClients = 6;
  constexpr int kPerClient = 300;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(static_cast<std::uint64_t>(c) + 1);
      const auto n = static_cast<std::uint64_t>(f.graph.num_vertices());
      for (int i = 0; i < kPerClient; ++i) {
        const auto u = static_cast<Vertex>(rng.uniform(n));
        const auto v = static_cast<Vertex>(rng.uniform(n));
        switch (i % 3) {
          case 0: {
            const DistanceReply reply = service.distance(u, v);
            ASSERT_EQ(reply.error, ServeError::kOk);
            ASSERT_EQ(reply.distance, f.matrix.at(u, v));
            break;
          }
          case 1: {
            const PathReply reply = service.shortest_path(u, v);
            ASSERT_EQ(reply.error, ServeError::kOk);
            ASSERT_EQ(reply.distance, f.matrix.at(u, v));
            if (!reply.path.empty())
              ASSERT_NEAR(oracle.path_weight(reply.path),
                          f.matrix.at(u, v), 1e-9);
            break;
          }
          default: {
            const KNearestReply reply = service.k_nearest(u, 4);
            ASSERT_EQ(reply.error, ServeError::kOk);
            ASSERT_LE(reply.nearest.size(), 4u);
            break;
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const TileCache::Stats stats = service.cache_stats();
  EXPECT_GT(stats.evictions, 0);
  EXPECT_EQ(service.metrics_snapshot().at("serve.request.ok").counter,
            kClients * kPerClient);
}

TEST(TileCache, LruEvictsColdTilesFirst) {
  MetricsRegistry registry;
  TileCacheOptions options;
  options.shards = 1;  // single shard makes the LRU order observable
  options.byte_budget =
      3 * (64 + 4 * static_cast<std::int64_t>(sizeof(Dist)));
  TileCache cache(options, registry);
  auto tile = [] {
    DistBlock t(2, 2);
    t.zero_diagonal();
    return t;
  };
  cache.put(0, tile());
  cache.put(1, tile());
  cache.put(2, tile());
  EXPECT_NE(cache.get(0), nullptr);  // refresh 0: now 1 is the coldest
  cache.put(3, tile());              // evicts 1
  EXPECT_NE(cache.get(0), nullptr);
  EXPECT_EQ(cache.get(1), nullptr);
  EXPECT_NE(cache.get(3), nullptr);
  EXPECT_GT(cache.stats().evictions, 0);
}

TEST(TileCache, SharedTileSurvivesEviction) {
  MetricsRegistry registry;
  TileCacheOptions options;
  options.shards = 1;
  options.byte_budget = 1;  // at most one resident entry, always over budget
  TileCache cache(options, registry);
  DistBlock t(2, 2);
  t.at(0, 1) = 7;
  const std::shared_ptr<const DistBlock> held = cache.put(10, std::move(t));
  cache.put(11, DistBlock(2, 2));  // evicts tile 10
  EXPECT_EQ(cache.get(10), nullptr);
  // The caller's reference keeps the evicted tile alive and intact.
  EXPECT_EQ(held->at(0, 1), 7);
}

}  // namespace
}  // namespace capsp
