// Tests for the tiled CAPSPDB2 snapshot format (serve/snapshot):
// round-trip fidelity (including the CAPSPDB1 upgrade path), writer
// geometry CHECKs, and reader rejection of truncated/corrupt files.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "semiring/block_io.hpp"
#include "serve/snapshot.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace capsp {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/capsp_snapshot_" + name;
}

DistBlock random_matrix(std::int64_t rows, std::int64_t cols,
                        std::uint64_t seed) {
  Rng rng(seed);
  DistBlock block(rows, cols);
  for (auto& v : block.data())
    v = rng.bernoulli(0.1) ? kInf : rng.uniform_real(-100, 100);
  return block;
}

/// Reassemble the full matrix from a reader's tiles.
DistBlock reassemble(const SnapshotReader& reader) {
  const SnapshotHeader& h = reader.header();
  DistBlock full(h.rows, h.cols);
  for (std::int64_t t = 0; t < h.num_tiles(); ++t)
    full.set_sub_block((t / h.tile_cols()) * h.tile_dim,
                       (t % h.tile_cols()) * h.tile_dim, reader.read_tile(t));
  return full;
}

TEST(SnapshotHeader, TileGeometry) {
  const SnapshotHeader h{10, 7, 4};
  EXPECT_EQ(h.tile_rows(), 3);
  EXPECT_EQ(h.tile_cols(), 2);
  EXPECT_EQ(h.num_tiles(), 6);
  EXPECT_EQ(h.tile_row_dim(0), 4);
  EXPECT_EQ(h.tile_row_dim(2), 2);  // clipped edge tile
  EXPECT_EQ(h.tile_col_dim(1), 3);
  EXPECT_EQ(h.tile_id(2, 1), 5);
}

TEST(Snapshot, RoundTripBitExact) {
  const DistBlock matrix = random_matrix(21, 21, 7);
  const std::string path = temp_path("roundtrip.snap");
  write_snapshot(path, matrix, 8);
  const SnapshotReader reader(path);
  EXPECT_TRUE(reader.file_backed());
  EXPECT_EQ(reader.header().tile_dim, 8);
  EXPECT_EQ(reassemble(reader), matrix);
  std::remove(path.c_str());
}

// The satellite fuzz requirement: CAPSPDB1 -> upgrade -> CAPSPDB2 ->
// tiles preserves every entry bit-exactly, over random dims (including
// degenerate ones) and tile dims (1, non-divisor, divisor, oversize).
TEST(Snapshot, FuzzUpgradePreservesEveryEntry) {
  Rng rng(99);
  const std::string db1 = temp_path("fuzz.db1");
  const std::string db2 = temp_path("fuzz.snap");
  for (int round = 0; round < 40; ++round) {
    std::int64_t rows = 0, cols = 0;
    switch (round) {
      case 0: rows = 0; cols = 0; break;
      case 1: rows = 1; cols = 1; break;
      case 2: rows = 0; cols = 5; break;
      default:
        rows = static_cast<std::int64_t>(rng.uniform(40));
        cols = static_cast<std::int64_t>(rng.uniform(40));
    }
    const std::int64_t tile_choices[] = {1, 3, 8, 64};
    const std::int64_t tile =
        tile_choices[rng.uniform(4)];
    const DistBlock matrix =
        random_matrix(rows, cols, 1000 + static_cast<std::uint64_t>(round));
    save_block(db1, matrix);
    upgrade_snapshot(db1, db2, tile);
    const SnapshotReader reader(db2);
    ASSERT_EQ(reader.header().rows, rows);
    ASSERT_EQ(reader.header().cols, cols);
    ASSERT_EQ(reassemble(reader), matrix)
        << "round " << round << ": " << rows << "x" << cols << " tile "
        << tile;
  }
  std::remove(db1.c_str());
  std::remove(db2.c_str());
}

TEST(Snapshot, LegacyDb1OpensDirectly) {
  const DistBlock matrix = random_matrix(9, 9, 3);
  const std::string path = temp_path("legacy.db1");
  save_block(path, matrix);
  const SnapshotReader reader(path, /*legacy_tile_dim=*/4);
  EXPECT_FALSE(reader.file_backed());
  EXPECT_EQ(reader.header().tile_dim, 4);
  EXPECT_EQ(reassemble(reader), matrix);
  std::remove(path.c_str());
}

TEST(Snapshot, InMemoryReaderTilesVirtually) {
  const DistBlock matrix = random_matrix(11, 5, 4);
  const SnapshotReader reader(matrix, 4);
  EXPECT_FALSE(reader.file_backed());
  EXPECT_EQ(reader.header().num_tiles(), 3 * 2);
  EXPECT_EQ(reassemble(reader), matrix);
  EXPECT_EQ(reader.tile_bytes(0),
            4 * 4 * static_cast<std::int64_t>(sizeof(Dist)));
  // bottom-right tile is clipped to 3x1
  EXPECT_EQ(reader.tile_bytes(5),
            3 * 1 * static_cast<std::int64_t>(sizeof(Dist)));
}

TEST(Snapshot, StreamingWriterMatchesOneShot) {
  const DistBlock matrix = random_matrix(13, 10, 5);
  const std::string one_shot = temp_path("oneshot.snap");
  const std::string streamed = temp_path("streamed.snap");
  write_snapshot(one_shot, matrix, 4);
  {
    SnapshotWriter writer(streamed, 13, 10, 4);
    const SnapshotHeader& h = writer.header();
    for (std::int64_t tr = 0; tr < h.tile_rows(); ++tr)
      for (std::int64_t tc = 0; tc < h.tile_cols(); ++tc)
        writer.write_tile(matrix.sub_block(tr * 4, tc * 4, h.tile_row_dim(tr),
                                           h.tile_col_dim(tc)));
    writer.close();
  }
  std::ifstream a(one_shot, std::ios::binary), b(streamed, std::ios::binary);
  const std::string bytes_a((std::istreambuf_iterator<char>(a)),
                            std::istreambuf_iterator<char>());
  const std::string bytes_b((std::istreambuf_iterator<char>(b)),
                            std::istreambuf_iterator<char>());
  EXPECT_EQ(bytes_a, bytes_b);
  std::remove(one_shot.c_str());
  std::remove(streamed.c_str());
}

TEST(SnapshotWriter, RejectsWrongTileGeometry) {
  const std::string path = temp_path("badtile.snap");
  SnapshotWriter writer(path, 10, 10, 4);
  EXPECT_THROW(writer.write_tile(DistBlock(3, 4)), check_error);
  std::remove(path.c_str());
}

TEST(SnapshotWriter, CloseBeforeAllTilesRejected) {
  const std::string path = temp_path("short.snap");
  SnapshotWriter writer(path, 8, 8, 4);
  writer.write_tile(DistBlock(4, 4));
  EXPECT_THROW(writer.close(), check_error);
  std::remove(path.c_str());
}

TEST(SnapshotReader, RejectsBadMagic) {
  const std::string path = temp_path("badmagic.snap");
  std::ofstream(path, std::ios::binary) << "NOTADB!!garbagegarbage";
  EXPECT_THROW(SnapshotReader reader(path), check_error);
  std::remove(path.c_str());
}

TEST(SnapshotReader, RejectsTruncatedHeader) {
  const std::string path = temp_path("shorthdr.snap");
  std::ofstream(path, std::ios::binary) << "CAPSPDB2";
  EXPECT_THROW(SnapshotReader reader(path), check_error);
  std::remove(path.c_str());
}

TEST(SnapshotReader, RejectsTruncatedPayload) {
  const DistBlock matrix = random_matrix(12, 12, 6);
  const std::string path = temp_path("truncated.snap");
  write_snapshot(path, matrix, 4);
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  bytes.resize(bytes.size() - 16);
  std::ofstream(path, std::ios::binary) << bytes;
  EXPECT_THROW(SnapshotReader reader(path), check_error);
  std::remove(path.c_str());
}

TEST(SnapshotReader, RejectsCorruptIndex) {
  const DistBlock matrix = random_matrix(12, 12, 8);
  const std::string path = temp_path("badindex.snap");
  write_snapshot(path, matrix, 4);
  // First index entry starts at byte 32; smash its offset.
  std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
  file.seekp(32);
  const std::int64_t bogus = 12345;
  file.write(reinterpret_cast<const char*>(&bogus), sizeof(bogus));
  file.close();
  EXPECT_THROW(SnapshotReader reader(path), check_error);
  std::remove(path.c_str());
}

TEST(SnapshotReader, ChecksumCatchesFlippedPayloadBit) {
  const DistBlock matrix = random_matrix(12, 12, 9);
  const std::string path = temp_path("bitflip.snap");
  write_snapshot(path, matrix, 4);
  const SnapshotHeader h{12, 12, 4};
  // Structural checks still pass (size and offsets untouched); only the
  // per-tile checksum can catch a payload bit flip.
  std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
  const std::int64_t payload_start = 32 + h.num_tiles() * 16;
  file.seekg(payload_start + 5);
  char byte = 0;
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x10);
  file.seekp(payload_start + 5);
  file.write(&byte, 1);
  file.close();
  const SnapshotReader reader(path);  // structural open succeeds
  EXPECT_THROW(reader.read_tile(0), check_error);
  EXPECT_NO_THROW(reader.read_tile(1));  // other tiles unaffected
  std::remove(path.c_str());
}

TEST(SnapshotReader, EmptyMatrixSnapshot) {
  const std::string path = temp_path("empty.snap");
  write_snapshot(path, DistBlock(0, 0), 4);
  const SnapshotReader reader(path);
  EXPECT_EQ(reader.header().num_tiles(), 0);
  EXPECT_THROW(reader.read_tile(0), check_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace capsp
