// Integration tests: every distributed APSP implementation against the
// sequential oracle, across graph families × machine sizes × weight
// distributions.  These are the end-to-end correctness guarantee for the
// whole repository.
#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "baseline/dc_apsp.hpp"
#include "baseline/fw2d.hpp"
#include "baseline/reference.hpp"
#include "core/sparse_apsp.hpp"
#include "core/superfw.hpp"
#include "graph/generators.hpp"

namespace capsp {
namespace {

struct GraphCase {
  std::string name;
  std::function<Graph(Rng&)> make;
};

std::vector<GraphCase> graph_cases() {
  return {
      {"grid2d_8x8", [](Rng& rng) { return make_grid2d(8, 8, rng); }},
      {"grid2d_7x9", [](Rng& rng) { return make_grid2d(7, 9, rng); }},
      {"grid3d_4x4x4",
       [](Rng& rng) { return make_grid3d(4, 4, 4, rng); }},
      {"path_60", [](Rng& rng) { return make_path(60, rng); }},
      {"cycle_45", [](Rng& rng) { return make_cycle(45, rng); }},
      {"tree_70", [](Rng& rng) { return make_random_tree(70, rng); }},
      {"erdos_renyi_64",
       [](Rng& rng) { return make_erdos_renyi(64, 4.0, rng); }},
      {"geometric_60",
       [](Rng& rng) { return make_random_geometric(60, 0.2, rng); }},
      {"rmat_64", [](Rng& rng) { return make_rmat(64, 5.0, rng); }},
      {"ladder_48", [](Rng& rng) { return make_ladder(48, rng); }},
      {"small_world_50",
       [](Rng& rng) { return make_small_world(50, 2, 0.2, rng); }},
      {"complete_20", [](Rng& rng) { return make_complete(20, rng); }},
      {"paper_figure1", [](Rng&) { return make_paper_figure1(); }},
      {"disconnected_two_paths",
       [](Rng& rng) {
         GraphBuilder builder(40);
         for (Vertex i = 0; i < 19; ++i) {
           builder.add_edge(i, i + 1, draw_weight(rng, {}));
           builder.add_edge(20 + i, 21 + i, draw_weight(rng, {}));
         }
         return std::move(builder).build();
       }},
      {"star_33",
       [](Rng& rng) {
         GraphBuilder builder(33);
         for (Vertex i = 1; i < 33; ++i)
           builder.add_edge(0, i, draw_weight(rng, {}));
         return std::move(builder).build();
       }},
  };
}

void expect_apsp_eq(const DistBlock& got, const DistBlock& want,
                    const std::string& context) {
  ASSERT_EQ(got.rows(), want.rows()) << context;
  ASSERT_EQ(got.cols(), want.cols()) << context;
  for (std::int64_t r = 0; r < got.rows(); ++r)
    for (std::int64_t c = 0; c < got.cols(); ++c) {
      if (is_inf(want.at(r, c))) {
        ASSERT_TRUE(is_inf(got.at(r, c)))
            << context << " at (" << r << "," << c << "): expected inf, got "
            << got.at(r, c);
      } else {
        ASSERT_NEAR(got.at(r, c), want.at(r, c), 1e-9)
            << context << " at (" << r << "," << c << ")";
      }
    }
}

// ---------------------------------------------------------------------
// 2D-SPARSE-APSP
// ---------------------------------------------------------------------

class SparseApspFamilies
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SparseApspFamilies, MatchesOracle) {
  const auto [case_index, height] = GetParam();
  const GraphCase gcase =
      graph_cases()[static_cast<std::size_t>(case_index)];
  Rng rng(1000 + static_cast<std::uint64_t>(case_index));
  const Graph graph = gcase.make(rng);
  const DistBlock want = reference_apsp(graph);
  SparseApspOptions options;
  options.height = height;
  options.seed = 7;
  const SparseApspResult got = run_sparse_apsp(graph, options);
  expect_apsp_eq(got.distances, want,
                 gcase.name + " h=" + std::to_string(height));
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesTimesHeights, SparseApspFamilies,
    ::testing::Combine(::testing::Range(0, 15), ::testing::Values(1, 2, 3)));

TEST(SparseApsp, Height4LargeGrid) {
  Rng rng(2);
  const Graph graph = make_grid2d(14, 14, rng);
  const DistBlock want = reference_apsp(graph);
  SparseApspOptions options;
  options.height = 4;  // p = 225 ranks
  const SparseApspResult got = run_sparse_apsp(graph, options);
  expect_apsp_eq(got.distances, want, "grid14 h=4");
  EXPECT_EQ(got.num_ranks, 225);
}

TEST(SparseApsp, RealWeightsNotInteger) {
  Rng rng(3);
  WeightOptions opts;
  opts.integer = false;
  opts.min_weight = 0.1;
  opts.max_weight = 2.0;
  const Graph graph = make_grid2d(9, 9, rng, opts);
  const DistBlock want = reference_apsp(graph);
  SparseApspOptions options;
  options.height = 3;
  const SparseApspResult got = run_sparse_apsp(graph, options);
  expect_apsp_eq(got.distances, want, "real weights");
}

TEST(SparseApsp, ZeroWeightEdgesAllowed) {
  Rng rng(4);
  WeightOptions opts;
  opts.min_weight = 0;
  opts.max_weight = 3;
  const Graph graph = make_grid2d(8, 8, rng, opts);
  const DistBlock want = reference_apsp(graph);
  SparseApspOptions options;
  options.height = 2;
  const SparseApspResult got = run_sparse_apsp(graph, options);
  expect_apsp_eq(got.distances, want, "zero weights");
}

TEST(SparseApsp, ReusesExternalDissection) {
  Rng rng(5);
  const Graph graph = make_grid2d(8, 8, rng);
  Rng nd_rng(6);
  const Dissection nd = nested_dissection(graph, 3, nd_rng);
  const SparseApspResult got = run_sparse_apsp(graph, nd);
  expect_apsp_eq(got.distances, reference_apsp(graph), "external nd");
  EXPECT_EQ(got.separator_size, nd.top_separator_size());
}

TEST(SparseApsp, SkippingCollectionStillReportsCosts) {
  Rng rng(7);
  const Graph graph = make_grid2d(8, 8, rng);
  SparseApspOptions options;
  options.height = 2;
  options.collect_distances = false;
  const SparseApspResult got = run_sparse_apsp(graph, options);
  EXPECT_TRUE(got.distances.empty());
  EXPECT_GT(got.costs.critical_latency, 0);
  EXPECT_GT(got.max_block_words, 0);
}

TEST(SparseApsp, DeterministicAcrossRuns) {
  Rng rng(8);
  const Graph graph = make_erdos_renyi(50, 4.0, rng);
  SparseApspOptions options;
  options.height = 2;
  const SparseApspResult a = run_sparse_apsp(graph, options);
  const SparseApspResult b = run_sparse_apsp(graph, options);
  EXPECT_EQ(a.distances, b.distances);
  EXPECT_EQ(a.costs.critical_latency, b.costs.critical_latency);
  EXPECT_EQ(a.costs.critical_bandwidth, b.costs.critical_bandwidth);
  EXPECT_EQ(a.costs.total_words, b.costs.total_words);
}

TEST(SparseApsp, TinyGraphsSurviveDeepTrees) {
  // Graphs much smaller than the supernode count: many empty supernodes.
  Rng rng(9);
  for (Vertex n : {2, 3, 5, 8}) {
    const Graph graph = make_path(n, rng);
    SparseApspOptions options;
    options.height = 3;  // 7 supernodes
    const SparseApspResult got = run_sparse_apsp(graph, options);
    expect_apsp_eq(got.distances, reference_apsp(graph),
                   "tiny n=" + std::to_string(n));
  }
}

TEST(SparseApsp, SingleVertexGraph) {
  const Graph graph = std::move(GraphBuilder(1)).build();
  SparseApspOptions options;
  options.height = 2;
  const SparseApspResult got = run_sparse_apsp(graph, options);
  ASSERT_EQ(got.distances.rows(), 1);
  EXPECT_EQ(got.distances.at(0, 0), 0);
}

// ---------------------------------------------------------------------
// SuperFW
// ---------------------------------------------------------------------

class SuperFwFamilies : public ::testing::TestWithParam<int> {};

TEST_P(SuperFwFamilies, MatchesOracle) {
  const GraphCase gcase =
      graph_cases()[static_cast<std::size_t>(GetParam())];
  Rng rng(2000 + static_cast<std::uint64_t>(GetParam()));
  const Graph graph = gcase.make(rng);
  Rng nd_rng(11);
  const Dissection nd = nested_dissection(graph, 3, nd_rng);
  const SuperFwResult got = superfw_original_order(graph, nd);
  expect_apsp_eq(got.distances, reference_apsp(graph), gcase.name);
}

INSTANTIATE_TEST_SUITE_P(Families, SuperFwFamilies, ::testing::Range(0, 15));

TEST(SuperFw, OpCountBelowDenseFwOnSparseGraph) {
  Rng rng(12);
  const Graph graph = make_grid2d(16, 16, rng);
  Rng nd_rng(13);
  const Dissection nd = nested_dissection(graph, 4, nd_rng);
  const SuperFwResult result = superfw_original_order(graph, nd);
  const auto n = static_cast<std::int64_t>(graph.num_vertices());
  EXPECT_LT(result.ops, n * n * n / 2);
  EXPECT_GT(result.skipped_blocks, 0);
}

TEST(SuperFw, OpReductionGrowsWithDepth) {
  // More ND levels expose more cousin pairs to skip.
  Rng rng(14);
  const Graph graph = make_grid2d(16, 16, rng);
  std::vector<std::int64_t> ops;
  for (int height : {1, 2, 3, 4}) {
    Rng nd_rng(15);
    const Dissection nd = nested_dissection(graph, height, nd_rng);
    ops.push_back(superfw_original_order(graph, nd).ops);
  }
  EXPECT_LT(ops[1], ops[0]);
  EXPECT_LT(ops[2], ops[1]);
  EXPECT_LT(ops[3], ops[2]);
}

// ---------------------------------------------------------------------
// Dense baselines
// ---------------------------------------------------------------------

class DcApspFamilies
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DcApspFamilies, MatchesOracle) {
  const auto [case_index, q] = GetParam();
  const GraphCase gcase =
      graph_cases()[static_cast<std::size_t>(case_index)];
  Rng rng(3000 + static_cast<std::uint64_t>(case_index));
  const Graph graph = gcase.make(rng);
  const DistributedApspResult got = run_dc_apsp(graph, q);
  expect_apsp_eq(got.distances, reference_apsp(graph),
                 gcase.name + " q=" + std::to_string(q));
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesTimesGrids, DcApspFamilies,
    ::testing::Combine(::testing::Range(0, 15), ::testing::Values(1, 2, 4)));

TEST(DcApsp, GridQ8) {
  Rng rng(16);
  const Graph graph = make_grid2d(10, 10, rng);
  const DistributedApspResult got = run_dc_apsp(graph, 8);
  expect_apsp_eq(got.distances, reference_apsp(graph), "dc q=8");
}

TEST(DcApsp, NonPowerOfTwoGridRejected) {
  Rng rng(17);
  const Graph graph = make_grid2d(4, 4, rng);
  EXPECT_THROW(run_dc_apsp(graph, 3), check_error);
}

class Fw2dParam
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(Fw2dParam, MatchesOracleAcrossBlockCounts) {
  const auto [q, nb] = GetParam();
  Rng rng(18);
  const Graph graph = make_grid2d(6, 7, rng);
  if (nb < q) GTEST_SKIP();
  const DistributedApspResult got = run_fw2d(graph, q, nb);
  expect_apsp_eq(got.distances, reference_apsp(graph),
                 "fw2d q=" + std::to_string(q) + " nb=" + std::to_string(nb));
}

INSTANTIATE_TEST_SUITE_P(
    GridsTimesBlocks, Fw2dParam,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(2, 3, 6, 14, 42)));

TEST(Fw2d, VertexWisePivotingMatchesOracle) {
  // blocks_per_dim == n: the Jenq–Sahni regime.
  Rng rng(19);
  const Graph graph = make_grid2d(5, 5, rng);
  const DistributedApspResult got = run_fw2d(graph, 2, 25);
  expect_apsp_eq(got.distances, reference_apsp(graph), "fw2d vertexwise");
}

TEST(Fw2d, BlockCountBoundsChecked) {
  Rng rng(20);
  const Graph graph = make_grid2d(4, 4, rng);
  EXPECT_THROW(run_fw2d(graph, 4, 2), check_error);    // nb < q
  EXPECT_THROW(run_fw2d(graph, 2, 17), check_error);   // nb > n
}

// ---------------------------------------------------------------------
// Cross-implementation agreement
// ---------------------------------------------------------------------

TEST(AllAlgorithms, AgreeOnTheSameInstance) {
  Rng rng(21);
  const Graph graph = make_random_geometric(49, 0.25, rng);
  const DistBlock want = reference_apsp(graph);

  SparseApspOptions options;
  options.height = 3;
  expect_apsp_eq(run_sparse_apsp(graph, options).distances, want, "sparse");
  expect_apsp_eq(run_dc_apsp(graph, 4).distances, want, "dc");
  expect_apsp_eq(run_fw2d(graph, 2, 7).distances, want, "fw2d");
  Rng nd_rng(22);
  const Dissection nd = nested_dissection(graph, 3, nd_rng);
  expect_apsp_eq(superfw_original_order(graph, nd).distances, want,
                 "superfw");
}

}  // namespace
}  // namespace capsp
