// Tests for the observability building blocks (docs/telemetry.md):
// Prometheus text exposition (name sanitization, bucket rendering, a
// golden scrape off a live TelemetryServer), RollingHistogram rotation
// under an injected monotonic clock, RequestTrace span trees and the
// RequestTraceLog's sampling/slow routing, and SloTracker burn-rate
// math.  Everything time-dependent injects time_points so the
// assertions are exact, not sleep-based.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "serve/reqtrace.hpp"
#include "serve/slo.hpp"
#include "serve/telemetry.hpp"
#include "util/metrics.hpp"
#include "util/procstat.hpp"
#include "util/prof.hpp"
#include "util/prometheus.hpp"

namespace capsp {
namespace {

using std::chrono::microseconds;
using std::chrono::milliseconds;
using std::chrono::seconds;

// ---------------------------------------------------------------------
// Prometheus text exposition

TEST(Prometheus, NameSanitization) {
  EXPECT_EQ(prometheus_name("serve.request.ok"), "serve_request_ok");
  EXPECT_EQ(prometheus_name("serve.cache.shard0.hit"),
            "serve_cache_shard0_hit");
  EXPECT_EQ(prometheus_name("already_valid:name_2"), "already_valid:name_2");
  EXPECT_EQ(prometheus_name("9lives"), "_9lives");
  EXPECT_EQ(prometheus_name("a-b/c d"), "a_b_c_d");
  EXPECT_EQ(prometheus_name(""), "_");
}

TEST(Prometheus, GoldenRenderOfASmallRegistry) {
  MetricsRegistry registry;
  registry.gauge_set("cache.bytes", 1.5);
  registry.observe("lat", 1.0);    // bucket 0: le 1
  registry.observe("lat", 3.0);    // bucket 2: le 4
  registry.observe("lat", 100.0);  // bucket 7: le 128
  registry.counter_add("serve.request.ok", 3);
  std::ostringstream out;
  write_prometheus_text(out, registry.snapshot(), "capsp_");
  EXPECT_EQ(out.str(),
            "# TYPE capsp_cache_bytes gauge\n"
            "capsp_cache_bytes 1.5\n"
            "# TYPE capsp_lat histogram\n"
            "capsp_lat_bucket{le=\"1\"} 1\n"
            "capsp_lat_bucket{le=\"4\"} 2\n"
            "capsp_lat_bucket{le=\"128\"} 3\n"
            "capsp_lat_bucket{le=\"+Inf\"} 3\n"
            "capsp_lat_sum 104\n"
            "capsp_lat_count 3\n"
            "# TYPE capsp_serve_request_ok counter\n"
            "capsp_serve_request_ok 3\n");
}

TEST(Prometheus, HistogramBucketsAreCumulativeAndSkipEmpties) {
  MetricsRegistry registry;
  for (int i = 0; i < 10; ++i) registry.observe("h", 0.5);  // all bucket 0
  registry.observe("h", 1000.0);  // bucket 10: le 1024
  std::ostringstream out;
  write_prometheus_text(out, registry.snapshot());
  const std::string text = out.str();
  // The empty buckets between le=1 and le=1024 must not be rendered, and
  // the rendered counts are cumulative.
  EXPECT_NE(text.find("h_bucket{le=\"1\"} 10\n"), std::string::npos);
  EXPECT_EQ(text.find("le=\"2\""), std::string::npos);
  EXPECT_NE(text.find("h_bucket{le=\"1024\"} 11\n"), std::string::npos);
  EXPECT_NE(text.find("h_bucket{le=\"+Inf\"} 11\n"), std::string::npos);
  EXPECT_NE(text.find("h_count 11\n"), std::string::npos);
}

TEST(Prometheus, NonFiniteGaugesUsePrometheusSpelling) {
  MetricsRegistry registry;
  registry.gauge_set("g", std::numeric_limits<double>::infinity());
  std::ostringstream out;
  write_prometheus_text(out, registry.snapshot());
  EXPECT_EQ(out.str(), "# TYPE g gauge\ng +Inf\n");
}

// ---------------------------------------------------------------------
// RollingHistogram under an injected clock

TEST(RollingHistogram, WindowSlidesAndExpiresOldSlices) {
  using Clock = RollingHistogram::Clock;
  const Clock::time_point e = Clock::now();
  RollingHistogram window(10.0, 5, e);  // 5 slices of 2 s
  EXPECT_DOUBLE_EQ(window.window_seconds(), 10.0);
  window.observe(100.0, e + seconds(1));  // slice 0
  window.observe(200.0, e + seconds(3));  // slice 1

  WindowStats stats = window.stats(e + seconds(3));
  EXPECT_EQ(stats.count, 2);
  EXPECT_DOUBLE_EQ(stats.min, 100.0);
  EXPECT_DOUBLE_EQ(stats.max, 200.0);
  EXPECT_DOUBLE_EQ(stats.mean, 150.0);
  // Covered time is the elapsed 3 s, not the configured 10 s, so an
  // early-run rate is not understated.
  EXPECT_DOUBLE_EQ(stats.covered_seconds, 3.0);
  EXPECT_DOUBLE_EQ(stats.rate_per_second, 2.0 / 3.0);

  // At t=11 s slice 0 (t<2 s) has left the window; only the 200 remains.
  stats = window.stats(e + seconds(11));
  EXPECT_EQ(stats.count, 1);
  EXPECT_DOUBLE_EQ(stats.min, 200.0);
  EXPECT_DOUBLE_EQ(stats.covered_seconds, 10.0);

  // A much later observation recycles the slice slot in place (lazy
  // rotation): old contents must not leak into the new window.
  window.observe(300.0, e + seconds(21));
  stats = window.stats(e + seconds(21));
  EXPECT_EQ(stats.count, 1);
  EXPECT_DOUBLE_EQ(stats.min, 300.0);
  EXPECT_DOUBLE_EQ(stats.max, 300.0);
}

TEST(RollingHistogram, EmptyWindowIsZerosNotGarbage) {
  using Clock = RollingHistogram::Clock;
  const Clock::time_point e = Clock::now();
  RollingHistogram window(10.0, 5, e);
  WindowStats stats = window.stats(e);
  EXPECT_EQ(stats.count, 0);
  EXPECT_DOUBLE_EQ(stats.rate_per_second, 0.0);
  EXPECT_DOUBLE_EQ(stats.mean, 0.0);
  EXPECT_DOUBLE_EQ(stats.p99, 0.0);
  // Covered time never drops below one slice, so a first-instant burst
  // cannot produce an infinite rate.
  EXPECT_DOUBLE_EQ(stats.covered_seconds, 2.0);

  // A window everything has rotated out of is empty again.
  window.observe(1.0, e + seconds(1));
  stats = window.stats(e + seconds(100));
  EXPECT_EQ(stats.count, 0);
  EXPECT_DOUBLE_EQ(stats.rate_per_second, 0.0);
}

TEST(RollingHistogram, PercentilesComeFromTheMergedWindow) {
  using Clock = RollingHistogram::Clock;
  const Clock::time_point e = Clock::now();
  RollingHistogram window(10.0, 5, e);
  // Two slices merge into one distribution: 90% fast, 10% slow.
  for (int i = 0; i < 90; ++i) window.observe(10.0, e + seconds(1));
  for (int i = 0; i < 10; ++i) window.observe(5000.0, e + seconds(3));
  const WindowStats stats = window.stats(e + seconds(4));
  EXPECT_EQ(stats.count, 100);
  // The log2 histogram answers within its 2x bucket resolution for the
  // body and exactly (clamped to max) for the tail.
  EXPECT_GE(stats.p50, 10.0);
  EXPECT_LE(stats.p50, 16.0);
  EXPECT_DOUBLE_EQ(stats.p99, 5000.0);
  EXPECT_DOUBLE_EQ(stats.max, 5000.0);
}

TEST(RollingHistogram, SparseWindowPercentilesFromASingleObservation) {
  // The degenerate-but-common idle-service shape: one slice holds one
  // sample, the rest of the window is empty.  Every percentile must be
  // that sample (clamped to the exact max), never a bucket midpoint of
  // an empty histogram.
  using Clock = RollingHistogram::Clock;
  const Clock::time_point e = Clock::now();
  RollingHistogram window(10.0, 5, e);
  window.observe(42.0, e + seconds(7));
  const WindowStats stats = window.stats(e + seconds(8));
  EXPECT_EQ(stats.count, 1);
  EXPECT_DOUBLE_EQ(stats.min, 42.0);
  EXPECT_DOUBLE_EQ(stats.max, 42.0);
  EXPECT_DOUBLE_EQ(stats.mean, 42.0);
  // With a single sample, p50/p95/p99 all land on it (log2 buckets
  // clamp the last percentile to the observed max).
  EXPECT_GE(stats.p50, 42.0 / 2);
  EXPECT_LE(stats.p50, 64.0);
  EXPECT_DOUBLE_EQ(stats.p99, 42.0);

  // Percentiles of a window that sees counts only in its oldest live
  // slice (everything newer empty) still come from that slice.
  const WindowStats late = window.stats(e + seconds(15));
  EXPECT_EQ(late.count, 1);
  EXPECT_DOUBLE_EQ(late.p99, 42.0);
}

// ---------------------------------------------------------------------
// RequestTrace / RequestTraceLog

TEST(RequestTrace, SpanTreeNestingRenameDetailAndFinishClamp) {
  using Clock = RequestTrace::Clock;
  const Clock::time_point epoch = Clock::now();
  RequestTrace trace(42, "path", 3, 9, -1, /*sampled=*/true, epoch);
  EXPECT_EQ(trace.id(), 42);
  EXPECT_STREQ(trace.kind(), "path");
  EXPECT_EQ(trace.u(), 3);
  EXPECT_EQ(trace.v(), 9);
  EXPECT_EQ(trace.k(), -1);
  EXPECT_TRUE(trace.sampled());
  EXPECT_GE(trace.start_offset_us(), 0.0);

  const Clock::time_point base = Clock::now();
  trace.mark_dequeued(base);
  const std::int64_t a = trace.begin_span("tile.cache_miss",
                                          base + microseconds(2));
  trace.set_span_detail(a, "tile", 17);
  const std::int64_t b = trace.begin_span("tile.snapshot_read",
                                          base + microseconds(3));
  trace.end_span(b, base + microseconds(5));
  trace.set_span_name(a, "tile.cache_hit");
  trace.end_span(a, base + microseconds(6));
  trace.begin_span("path.hop", base + microseconds(7));  // left open
  trace.finish("ok", base + microseconds(10));

  EXPECT_STREQ(trace.outcome(), "ok");
  const auto& spans = trace.spans();
  ASSERT_EQ(spans.size(), 5u);
  EXPECT_STREQ(spans[0].name, "queue_wait");
  EXPECT_STREQ(spans[1].name, "execute");
  EXPECT_STREQ(spans[2].name, "tile.cache_hit");  // renamed from miss
  EXPECT_STREQ(spans[3].name, "tile.snapshot_read");
  EXPECT_STREQ(spans[4].name, "path.hop");
  // Parents: queue_wait and execute are top level; the tile spans nest
  // under execute, the snapshot read under the cache span.
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_EQ(spans[1].parent, -1);
  EXPECT_EQ(spans[2].parent, 1);
  EXPECT_EQ(spans[3].parent, 2);
  EXPECT_EQ(spans[4].parent, 1);
  EXPECT_STREQ(spans[2].detail_name, "tile");
  EXPECT_EQ(spans[2].detail, 17);
  // Injected times make durations exact.
  EXPECT_NEAR(spans[3].end_us - spans[3].start_us, 2.0, 1e-6);
  EXPECT_NEAR(spans[2].end_us - spans[2].start_us, 4.0, 1e-6);
  // finish() closed the open spans (execute, path.hop) at the end.
  EXPECT_DOUBLE_EQ(spans[1].end_us, trace.total_us());
  EXPECT_DOUBLE_EQ(spans[4].end_us, trace.total_us());
  EXPECT_GE(trace.total_us(), 10.0);
}

TEST(RequestTrace, NullTraceScopedSpanIsANoOp) {
  ScopedSpan span(nullptr, "anything");
  span.rename("still nothing");
  span.detail("tile", 1);  // must not crash
}

TEST(RequestTraceLog, OneInNSamplingPicksEveryNth) {
  RequestTraceLog log({/*sample_every=*/3, /*slow_us=*/0,
                       /*keep=*/16, /*slow_keep=*/4});
  ASSERT_TRUE(log.enabled());
  int traced = 0;
  for (int i = 0; i < 9; ++i) {
    auto trace = log.maybe_start("distance", i, i + 1, -1);
    // Requests 1, 4, 7 (1-based) draw a trace; the rest return nullptr
    // because the slow log is off.
    if (i % 3 == 0) {
      ASSERT_NE(trace, nullptr) << i;
      EXPECT_TRUE(trace->sampled());
      ++traced;
      trace->finish("ok");
      EXPECT_FALSE(log.finish(std::move(trace)));
    } else {
      EXPECT_EQ(trace, nullptr) << i;
    }
  }
  EXPECT_EQ(traced, 3);
  const RequestTraceLog::Stats stats = log.stats();
  EXPECT_EQ(stats.started, 9);  // every request consumed an id
  EXPECT_EQ(stats.sampled_kept, 3);
  EXPECT_EQ(stats.slow, 0);
  EXPECT_EQ(stats.dropped, 0);
  EXPECT_EQ(log.kept().size(), 3u);
}

TEST(RequestTraceLog, DisabledLogNeverAllocatesATrace) {
  RequestTraceLog log;  // sample_every=0, slow_us=0
  EXPECT_FALSE(log.enabled());
  EXPECT_EQ(log.maybe_start("distance", 0, 1, -1), nullptr);
  EXPECT_EQ(log.stats().started, 0);
  EXPECT_TRUE(log.kept().empty());
}

TEST(RequestTraceLog, SlowRoutingBeatsSamplingAndRingsAreBounded) {
  using Clock = RequestTrace::Clock;
  // Slow threshold of 1 s: a finish "now" makes a fast trace, a finish
  // 2 s in the future a slow one — deterministic without sleeping.
  RequestTraceLog log({/*sample_every=*/2, /*slow_us=*/1e6,
                       /*keep=*/8, /*slow_keep=*/2});
  const auto start = [&](int i) {
    auto trace = log.maybe_start("distance", i, -1, -1);
    EXPECT_NE(trace, nullptr);  // slow log armed: every request traced
    return trace;
  };
  const auto finish_fast = [&](std::shared_ptr<RequestTrace> trace) {
    trace->finish("ok", Clock::now());
    return log.finish(std::move(trace));
  };
  const auto finish_slow = [&](std::shared_ptr<RequestTrace> trace) {
    trace->finish("ok", Clock::now() + seconds(2));
    return log.finish(std::move(trace));
  };

  EXPECT_FALSE(finish_fast(start(1)));  // sampled → sampled ring
  EXPECT_TRUE(finish_slow(start(2)));   // unsampled but slow → slow ring
  EXPECT_TRUE(finish_slow(start(3)));   // sampled AND slow → slow ring
  EXPECT_FALSE(finish_fast(start(4)));  // neither → dropped

  RequestTraceLog::Stats stats = log.stats();
  EXPECT_EQ(stats.started, 4);
  EXPECT_EQ(stats.slow, 2);
  EXPECT_EQ(stats.sampled_kept, 1);
  EXPECT_EQ(stats.dropped, 1);
  EXPECT_EQ(log.kept().size(), 3u);

  // slow_keep=2 bounds the slow ring: two more slow traces evict the
  // oldest two, but the lifetime counter keeps counting.
  EXPECT_TRUE(finish_slow(start(5)));
  EXPECT_TRUE(finish_slow(start(6)));
  stats = log.stats();
  EXPECT_EQ(stats.slow, 4);
  EXPECT_EQ(log.kept().size(), 3u);  // 2 slow + 1 sampled
}

TEST(RequestTraceLog, ChromeExportIsACompleteDocument) {
  RequestTraceLog log({/*sample_every=*/1, /*slow_us=*/0,
                       /*keep=*/8, /*slow_keep=*/4});
  auto trace = log.maybe_start("distance", 2, 5, -1);
  ASSERT_NE(trace, nullptr);
  trace->mark_dequeued();
  trace->finish("ok");
  log.finish(std::move(trace));
  std::ostringstream out;
  log.write_chrome_json(out);
  const std::string doc = out.str();
  EXPECT_EQ(doc.front(), '{');
  EXPECT_EQ(doc.substr(doc.size() - 2), "}\n");
  for (const char* needle :
       {"\"displayTimeUnit\"", "\"traceEvents\"", "\"capsp\"",
        "\"req 1 distance\"", "\"queue_wait\"", "\"execute\"",
        "\"reqtrace\"", "\"sample_every\""})
    EXPECT_NE(doc.find(needle), std::string::npos) << needle;
}

// ---------------------------------------------------------------------
// SloTracker

TEST(SloTracker, BurnRateAndBudgetMath) {
  using Clock = SloTracker::Clock;
  const Clock::time_point e = Clock::now();
  SloOptions options;
  options.latency_ms = 1;  // 1000 us
  options.latency_target = 0.9;
  options.availability_target = 0.99;
  options.window_seconds = 10;
  options.window_slices = 5;
  SloTracker slo(options, e);

  const Clock::time_point t = e + seconds(1);
  for (int i = 0; i < 8; ++i) slo.record(true, 500.0, t);  // fast successes
  slo.record(true, 2000.0, t);  // success, but over the latency objective
  slo.record(false, 0.0, t);    // rejected: availability-bad only

  const SloTracker::Snapshot snap = slo.snapshot(t);
  EXPECT_TRUE(snap.availability.enabled);
  EXPECT_EQ(snap.availability.total, 10);
  EXPECT_EQ(snap.availability.good, 9);
  EXPECT_DOUBLE_EQ(snap.availability.compliance, 0.9);
  // 10% failed against a 1% budget: the lifetime budget is 10x overspent
  // and the window burns at 10x the sustainable rate.
  EXPECT_NEAR(snap.availability.budget_remaining, -9.0, 1e-9);
  EXPECT_EQ(snap.availability.window_total, 10);
  EXPECT_NEAR(snap.availability.window_bad_fraction, 0.1, 1e-9);
  EXPECT_NEAR(snap.availability.burn_rate, 10.0, 1e-9);

  // The latency objective sees only the 9 successes; the rejection's
  // zero latency must not count as "fast".
  EXPECT_TRUE(snap.latency.enabled);
  EXPECT_EQ(snap.latency.total, 9);
  EXPECT_EQ(snap.latency.good, 8);
  EXPECT_NEAR(snap.latency.compliance, 8.0 / 9.0, 1e-9);
  EXPECT_EQ(snap.latency.window_total, 9);
  EXPECT_NEAR(snap.latency.burn_rate, (1.0 / 9.0) / 0.1, 1e-9);

  // Once the window slides past the burst the burn rate recovers but the
  // lifetime compliance remembers.
  const SloTracker::Snapshot later = slo.snapshot(e + seconds(30));
  EXPECT_EQ(later.availability.window_total, 0);
  EXPECT_DOUBLE_EQ(later.availability.burn_rate, 0.0);
  EXPECT_EQ(later.availability.total, 10);
  EXPECT_DOUBLE_EQ(later.availability.compliance, 0.9);
}

TEST(SloTracker, LatencyObjectiveDisabledWhenThresholdIsZero) {
  SloTracker slo;  // default options: latency_ms = 0
  slo.record(true, 123.0);
  const SloTracker::Snapshot snap = slo.snapshot();
  EXPECT_FALSE(snap.latency.enabled);
  EXPECT_EQ(snap.latency.total, 0);  // nothing recorded against it
  EXPECT_TRUE(snap.availability.enabled);
  EXPECT_EQ(snap.availability.total, 1);
  EXPECT_DOUBLE_EQ(snap.availability.compliance, 1.0);
  EXPECT_DOUBLE_EQ(snap.availability.budget_remaining, 1.0);
}

// ---------------------------------------------------------------------
// TelemetryServer

/// One raw HTTP exchange against 127.0.0.1:`port`.
std::string http_exchange(int port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  if (::send(fd, request.data(), request.size(), 0) !=
      static_cast<ssize_t>(request.size())) {
    ::close(fd);
    return "";
  }
  std::string response;
  char buffer[4096];
  ssize_t got;
  while ((got = ::recv(fd, buffer, sizeof(buffer), 0)) > 0)
    response.append(buffer, static_cast<std::size_t>(got));
  ::close(fd);
  return response;
}

std::string http_get(int port, const std::string& path) {
  return http_exchange(port,
                       "GET " + path + " HTTP/1.1\r\nHost: x\r\n\r\n");
}

/// Body of a response (after the blank line), or "" if malformed.
std::string body_of(const std::string& response) {
  const std::size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? "" : response.substr(split + 4);
}

TEST(TelemetryServer, GoldenScrapeOfALiveEndpoint) {
  MetricsRegistry registry;
  registry.counter_add("serve.request.ok", 7);
  TelemetryServer server;
  server.handle("/metrics", [&registry](const std::string&) {
    std::ostringstream out;
    write_prometheus_text(out, registry.snapshot(), "capsp_");
    return TelemetryResponse{
        200, "text/plain; version=0.0.4; charset=utf-8", out.str()};
  });
  const int port = server.start(0);
  ASSERT_GT(port, 0);
  EXPECT_EQ(server.port(), port);
  EXPECT_TRUE(server.running());

  const std::string response = http_get(port, "/metrics");
  EXPECT_NE(response.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(
      response.find("Content-Type: text/plain; version=0.0.4; charset=utf-8"),
      std::string::npos);
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
  const std::string golden =
      "# TYPE capsp_serve_request_ok counter\ncapsp_serve_request_ok 7\n";
  EXPECT_EQ(body_of(response), golden);
  EXPECT_NE(response.find("Content-Length: " +
                          std::to_string(golden.size())),
            std::string::npos);

  // Scrapes observe live values, not a snapshot from start time.
  registry.counter_add("serve.request.ok", 1);
  EXPECT_NE(body_of(http_get(port, "/metrics")).find("ok 8\n"),
            std::string::npos);

  server.stop();
  EXPECT_FALSE(server.running());
  server.stop();  // idempotent
  EXPECT_EQ(http_get(port, "/metrics"), "");  // nothing listens anymore
}

TEST(TelemetryServer, RoutingAndErrorStatuses) {
  TelemetryServer server;
  server.handle("/ok", [](const std::string&) {
    return TelemetryResponse{200, "text/plain", "fine\n"};
  });
  server.handle("/boom", [](const std::string&) -> TelemetryResponse {
    throw std::runtime_error("kaput");
  });
  const int port = server.start(0);

  EXPECT_NE(http_get(port, "/ok").find("HTTP/1.1 200"), std::string::npos);
  // Query strings are stripped before handler matching.
  EXPECT_NE(http_get(port, "/ok?verbose=1").find("HTTP/1.1 200"),
            std::string::npos);
  EXPECT_NE(http_get(port, "/missing").find("HTTP/1.1 404"),
            std::string::npos);
  const std::string boom = http_get(port, "/boom");
  EXPECT_NE(boom.find("HTTP/1.1 500"), std::string::npos);
  EXPECT_NE(boom.find("kaput"), std::string::npos);
  EXPECT_NE(
      http_exchange(port, "POST /ok HTTP/1.1\r\nHost: x\r\n\r\n")
          .find("HTTP/1.1 405"),
      std::string::npos);
  EXPECT_NE(http_exchange(port, "garbage\r\n\r\n").find("HTTP/1.1 400"),
            std::string::npos);
}

TEST(TelemetryServer, QueryStringReachesTheHandler) {
  TelemetryServer server;
  server.handle("/echo", [](const std::string& query) {
    return TelemetryResponse{
        200, "text/plain",
        telemetry_query_param(query, "x", "none") + "\n"};
  });
  const int port = server.start(0);
  EXPECT_NE(body_of(http_get(port, "/echo?x=7&y=8")).find("7\n"),
            std::string::npos);
  EXPECT_NE(body_of(http_get(port, "/echo")).find("none\n"),
            std::string::npos);
}

TEST(TelemetryQueryParam, MalformedAndDuplicatedQueries) {
  // First occurrence wins for duplicated keys (so ?seconds=2&seconds=900
  // cannot smuggle a huge window past a validator that reads once).
  EXPECT_EQ(telemetry_query_param("seconds=2&seconds=900", "seconds", "d"),
            "2");
  // Exact-key matching: neither a prefix nor a suffix of the key hits.
  EXPECT_EQ(telemetry_query_param("xseconds=5", "seconds", "d"), "d");
  EXPECT_EQ(telemetry_query_param("secondsx=5", "seconds", "d"), "d");
  EXPECT_EQ(telemetry_query_param("s=1&seconds=4", "seconds", "d"), "4");
  // Malformed fragments (empty pairs, bare keys, stray separators) are
  // skipped, not fatal.
  EXPECT_EQ(telemetry_query_param("&&==&seconds=3&", "seconds", "d"), "3");
  EXPECT_EQ(telemetry_query_param("seconds", "seconds", "d"), "d");
  EXPECT_EQ(telemetry_query_param("seconds=", "seconds", "d"), "d");
  EXPECT_EQ(telemetry_query_param("", "seconds", "d"), "d");
  // A value containing '=' keeps everything after the first one.
  EXPECT_EQ(telemetry_query_param("f=a=b", "f", "d"), "a=b");
}

TEST(TelemetryServer, ProfileStyleValidationOfEdgeCaseQueries) {
  // A handler with /profile's exact validation pattern (strtod + range
  // check): parsing edge cases must come back 400, never crash, and
  // duplicated parameters must resolve to the first value.
  TelemetryServer server;
  server.handle("/window", [](const std::string& query) {
    char* end = nullptr;
    const std::string seconds_str =
        telemetry_query_param(query, "seconds", "2");
    const double parsed = std::strtod(seconds_str.c_str(), &end);
    if (end == seconds_str.c_str() || !(parsed > 0))
      return TelemetryResponse{400, "text/plain", "bad seconds\n"};
    return TelemetryResponse{200, "text/plain",
                             "seconds=" + seconds_str + "\n"};
  });
  const int port = server.start(0);
  ASSERT_GT(port, 0);
  EXPECT_NE(body_of(http_get(port, "/window?seconds=3")).find("seconds=3"),
            std::string::npos);
  // Duplicated parameter: first wins, the 900 never reaches strtod.
  EXPECT_NE(body_of(http_get(port, "/window?seconds=3&seconds=900"))
                .find("seconds=3"),
            std::string::npos);
  for (const char* bad :
       {"/window?seconds=abc", "/window?seconds=-1", "/window?seconds=0",
        "/window?seconds=nanx"}) {
    EXPECT_NE(http_get(port, bad).find("HTTP/1.1 400"), std::string::npos)
        << bad;
  }
  // Absent / empty / malformed queries fall back to the default, 200.
  for (const char* ok :
       {"/window", "/window?", "/window?&&", "/window?seconds=",
        "/window?other=5"}) {
    EXPECT_NE(http_get(port, ok).find("HTTP/1.1 200"), std::string::npos)
        << ok;
  }
  // Unknown paths 404 even with well-formed queries attached.
  EXPECT_NE(http_get(port, "/windows?seconds=2").find("HTTP/1.1 404"),
            std::string::npos);
}

TEST(TelemetryServer, EintrDuringRecvDoesNotDropTheRequest) {
  // Regression (docs/robustness.md): a signal landing mid-recv used to
  // abort the connection; the read loop must retry EINTR and serve the
  // request as if nothing happened.
  TelemetryServer server;
  server.handle("/ok", [](const std::string&) {
    return TelemetryResponse{200, "text/plain", "fine\n"};
  });
  std::atomic<int> interrupted{0};
  server.set_recv_for_test(
      [&interrupted](int fd, void* buf, std::size_t len) -> long {
        // Interrupt the first read of every connection, then behave.
        if (interrupted.fetch_add(1) % 2 == 0) {
          errno = EINTR;
          return -1;
        }
        return ::recv(fd, buf, len, 0);
      });
  const int port = server.start(0);
  ASSERT_GT(port, 0);
  for (int i = 0; i < 3; ++i)
    EXPECT_NE(http_get(port, "/ok").find("HTTP/1.1 200"), std::string::npos);
  EXPECT_GE(interrupted.load(), 6);  // the fake recv actually interposed
}

TEST(TelemetryQueryParam, ParsingEdgeCases) {
  EXPECT_EQ(telemetry_query_param("a=1&b=2", "a", "d"), "1");
  EXPECT_EQ(telemetry_query_param("a=1&b=2", "b", "d"), "2");
  EXPECT_EQ(telemetry_query_param("a=1&b=2", "c", "d"), "d");
  EXPECT_EQ(telemetry_query_param("", "a", "d"), "d");
  // Empty value falls back, so "?seconds=" behaves like an omitted flag.
  EXPECT_EQ(telemetry_query_param("a=&b=2", "a", "d"), "d");
  // A key must match exactly, not as a prefix/suffix of another key.
  EXPECT_EQ(telemetry_query_param("ab=1", "a", "d"), "d");
  EXPECT_EQ(telemetry_query_param("b=2&a=3", "a", "d"), "3");
  // Valueless tokens are skipped, not misparsed.
  EXPECT_EQ(telemetry_query_param("flag&a=1", "a", "d"), "1");
}

// ---------------------------------------------------------------------
// Profiler vs. scraper interleaving

// Soak for the sanitizer builds: worker threads push/pop ProfScopes and
// register/unregister (thread birth/death) while the sampler walks their
// stacks and HTTP scrapers concurrently read process stats and profiler
// status.  Assertions are sanity-only; the value is TSan coverage of the
// scope-stack/ring/registry handoffs under real contention.
TEST(TelemetryServer, ScrapeWhileProfilingSoak) {
  TelemetryServer server;
  server.handle("/stats.json", [](const std::string&) {
    std::ostringstream out;
    const Profiler::Status status = Profiler::global().status();
    MetricsSnapshot snapshot;
    append_process_metrics(snapshot);
    out << "{\"running\": " << (status.running ? "true" : "false")
        << ", \"metrics\": " << snapshot.size() << "}\n";
    return TelemetryResponse{200, "application/json", out.str()};
  });
  const int port = server.start(0);
  ASSERT_GT(port, 0);

  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int w = 0; w < 3; ++w) {
    workers.emplace_back([&stop] {
      while (!stop.load(std::memory_order_acquire)) {
        ProfScope outer("test.soak.outer");
        for (int i = 0; i < 50; ++i) {
          ProfScope inner("test.soak.inner");
          inner.add_ops(10);
          inner.add_bytes(80);
        }
        // Thread churn: short-lived threads exercise registry
        // registration/removal against the sampler's walk.
        std::thread churn([] { ProfScope s("test.soak.churn"); });
        churn.join();
      }
    });
  }
  std::thread scraper([&stop, port] {
    while (!stop.load(std::memory_order_acquire))
      (void)http_get(port, "/stats.json");
  });

  std::int64_t total_samples = 0;
  for (int round = 0; round < 3; ++round) {
    ProfOptions options;
    options.hz = 997;
    ASSERT_TRUE(Profiler::global().start(options));
    EXPECT_FALSE(Profiler::global().start(options));  // busy, not UB
    std::this_thread::sleep_for(milliseconds(60));
    const ProfReport report = Profiler::global().stop();
    EXPECT_TRUE(report.enabled);
    EXPECT_EQ(report.dropped, 0);  // sampler self-drains its ring
    total_samples += report.samples;
    // Kernel accounting from the workers must be visible and coherent.
    const auto it = report.kernels.find("test.soak.inner");
    if (it != report.kernels.end()) {
      EXPECT_EQ(it->second.ops * 8, it->second.bytes);
      EXPECT_GT(it->second.calls, 0);
    }
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& w : workers) w.join();
  scraper.join();
  EXPECT_FALSE(Profiler::global().running());
  // Three 60 ms windows at ~1 kHz over 3 busy threads: seeing zero
  // samples would mean the sampler never observed a stack.
  EXPECT_GT(total_samples, 0);
}

}  // namespace
}  // namespace capsp
