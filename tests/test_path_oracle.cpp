// Tests for PathOracle: next-hop correctness, full path reconstruction
// (validated edge-by-edge against the distance matrix), analytics, and
// inconsistency detection.
#include <gtest/gtest.h>

#include <set>

#include "baseline/reference.hpp"
#include "core/path_oracle.hpp"
#include "core/sparse_apsp.hpp"
#include "graph/generators.hpp"

namespace capsp {
namespace {

PathOracle make_oracle(const Graph& graph) {
  return PathOracle(graph, reference_apsp(graph));
}

void expect_valid_path(const PathOracle& oracle, Vertex u, Vertex v) {
  const auto path = oracle.shortest_path(u, v);
  if (!oracle.reachable(u, v)) {
    EXPECT_TRUE(path.empty());
    return;
  }
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.front(), u);
  EXPECT_EQ(path.back(), v);
  // Consecutive vertices are edges; total weight equals the distance.
  EXPECT_NEAR(oracle.path_weight(path), oracle.distance(u, v), 1e-9);
  // No vertex repeats (shortest paths are simple for positive weights).
  std::set<Vertex> seen(path.begin(), path.end());
  EXPECT_EQ(seen.size(), path.size());
}

TEST(PathOracle, TinyTriangleNextHop) {
  GraphBuilder builder(3);
  builder.add_edge(0, 1, 1);
  builder.add_edge(1, 2, 1);
  builder.add_edge(0, 2, 5);
  const Graph graph = std::move(builder).build();
  const PathOracle oracle = make_oracle(graph);
  EXPECT_EQ(oracle.next_hop(0, 2), 1);  // via the cheap two-hop route
  EXPECT_EQ(oracle.next_hop(1, 2), 2);
  EXPECT_EQ(oracle.next_hop(2, 2), 2);
  EXPECT_EQ(oracle.shortest_path(0, 2), (std::vector<Vertex>{0, 1, 2}));
}

TEST(PathOracle, SelfPathIsSingleton) {
  Rng rng(1);
  const Graph graph = make_path(5, rng);
  const PathOracle oracle = make_oracle(graph);
  EXPECT_EQ(oracle.shortest_path(3, 3), (std::vector<Vertex>{3}));
  EXPECT_EQ(oracle.distance(3, 3), 0);
}

TEST(PathOracle, UnreachableGivesEmptyPathAndMinusOne) {
  GraphBuilder builder(4);
  builder.add_edge(0, 1, 1);
  builder.add_edge(2, 3, 1);
  const Graph graph = std::move(builder).build();
  const PathOracle oracle = make_oracle(graph);
  EXPECT_FALSE(oracle.reachable(0, 2));
  EXPECT_EQ(oracle.next_hop(0, 2), -1);
  EXPECT_TRUE(oracle.shortest_path(0, 2).empty());
}

class PathOracleFamilies : public ::testing::TestWithParam<int> {};

TEST_P(PathOracleFamilies, AllPairsPathsAreValid) {
  Rng rng(100 + static_cast<std::uint64_t>(GetParam()));
  Graph graph;
  switch (GetParam()) {
    case 0: graph = make_grid2d(6, 6, rng); break;
    case 1: graph = make_erdos_renyi(40, 4.0, rng); break;
    case 2: graph = make_random_tree(45, rng); break;
    case 3: {
      WeightOptions opts;
      opts.integer = false;
      opts.min_weight = 0.1;
      opts.max_weight = 3.0;
      graph = make_random_geometric(40, 0.3, rng, opts);
      break;
    }
    default: graph = make_cycle(30, rng); break;
  }
  const PathOracle oracle = make_oracle(graph);
  for (Vertex u = 0; u < graph.num_vertices(); ++u)
    for (Vertex v = 0; v < graph.num_vertices(); ++v)
      expect_valid_path(oracle, u, v);
}

INSTANTIATE_TEST_SUITE_P(Families, PathOracleFamilies,
                         ::testing::Range(0, 5));

TEST(PathOracle, WorksOnDistributedApspOutput) {
  // The whole point: routing queries over the sparse algorithm's result
  // with no extra infrastructure.
  Rng rng(7);
  const Graph graph = make_grid2d(8, 8, rng);
  SparseApspOptions options;
  options.height = 3;
  const SparseApspResult result = run_sparse_apsp(graph, options);
  const PathOracle oracle(graph, result.distances);
  for (Vertex v : {7, 42, 63}) expect_valid_path(oracle, 0, v);
}

TEST(PathOracle, AnalyticsOnAPath) {
  Rng rng(2);
  const Graph graph = make_path(5, rng, WeightOptions::unit());
  const PathOracle oracle = make_oracle(graph);
  EXPECT_EQ(oracle.diameter(), 4);
  EXPECT_EQ(oracle.radius(), 2);  // middle vertex
  EXPECT_EQ(oracle.eccentricity(0), 4);
  EXPECT_EQ(oracle.eccentricity(2), 2);
  // Mean distance over ordered pairs of a unit path P5: 2*(sum of all
  // pairwise hop counts) / 20 = 2*20/20 = 2.
  EXPECT_NEAR(oracle.mean_distance(), 2.0, 1e-12);
}

TEST(PathOracle, ClosenessPeaksAtTheCenter) {
  Rng rng(3);
  const Graph graph = make_path(7, rng, WeightOptions::unit());
  const PathOracle oracle = make_oracle(graph);
  const auto closeness = oracle.closeness_centrality();
  for (Vertex v = 0; v < 7; ++v)
    if (v != 3) {
      EXPECT_GT(closeness[3], closeness[static_cast<std::size_t>(v)]);
    }
}

TEST(PathOracle, DisconnectedAnalytics) {
  GraphBuilder builder(5);
  builder.add_edge(0, 1, 2);
  // vertices 2,3,4 isolated
  builder.add_edge(3, 4, 1);
  const Graph graph = std::move(builder).build();
  const PathOracle oracle = make_oracle(graph);
  EXPECT_EQ(oracle.diameter(), 2);     // within components only
  EXPECT_EQ(oracle.eccentricity(2), 0);
  const auto closeness = oracle.closeness_centrality();
  EXPECT_EQ(closeness[2], 0.0);
  EXPECT_GT(closeness[3], 0.0);
}

TEST(PathOracle, RejectsWrongShapeOrDiagonal) {
  Rng rng(4);
  const Graph graph = make_path(4, rng);
  EXPECT_THROW(PathOracle(graph, DistBlock(3, 3)), check_error);
  DistBlock bad = reference_apsp(graph);
  bad.at(1, 1) = 5;
  EXPECT_THROW(PathOracle(graph, bad), check_error);
}

TEST(PathOracle, SelfLoopsAndParallelEdges) {
  // GraphBuilder drops self-loops and keeps the cheapest of parallel
  // edges, so the oracle must route along the deduplicated weights.
  GraphBuilder builder(4);
  builder.add_edge(0, 0, 7);  // self-loop: dropped
  builder.add_edge(0, 1, 9);  // superseded by the cheaper parallel edge
  builder.add_edge(0, 1, 2);
  builder.add_edge(1, 1, 1);  // self-loop: dropped
  builder.add_edge(1, 2, 3);
  builder.add_edge(1, 2, 5);  // parallel, more expensive: ignored
  builder.add_edge(2, 3, 1);
  const Graph graph = std::move(builder).build();
  const PathOracle oracle = make_oracle(graph);
  EXPECT_EQ(oracle.distance(0, 0), 0);  // self-loop cannot beat the diagonal
  EXPECT_EQ(oracle.distance(0, 1), 2);  // min of the parallel weights
  EXPECT_EQ(oracle.distance(0, 3), 6);
  EXPECT_EQ(oracle.shortest_path(0, 3), (std::vector<Vertex>{0, 1, 2, 3}));
  for (Vertex u = 0; u < 4; ++u)
    for (Vertex v = 0; v < 4; ++v) expect_valid_path(oracle, u, v);
}

TEST(PathOracle, ViaFunctionsMatchTheMemberApi) {
  // next_hop_via / shortest_path_via are the oracle's logic behind a
  // pluggable distance lookup (the serving layer's hook); against the
  // same matrix they must agree with the members exactly.
  Rng rng(11);
  const Graph graph = make_grid2d(5, 5, rng);
  const DistBlock matrix = reference_apsp(graph);
  const PathOracle oracle(graph, matrix);
  const DistFn lookup = [&matrix](Vertex u, Vertex v) {
    return matrix.at(u, v);
  };
  for (Vertex u = 0; u < graph.num_vertices(); u += 3)
    for (Vertex v = 0; v < graph.num_vertices(); v += 2) {
      EXPECT_EQ(next_hop_via(graph, u, v, lookup), oracle.next_hop(u, v));
      EXPECT_EQ(shortest_path_via(graph, u, v, lookup),
                oracle.shortest_path(u, v));
    }
}

TEST(PathOracle, ViaFunctionsDetectInconsistentLookup) {
  Rng rng(12);
  const Graph graph = make_path(4, rng, WeightOptions::unit());
  const DistBlock matrix = reference_apsp(graph);
  const DistFn lying = [&matrix](Vertex u, Vertex v) {
    return (u == 0 && v == 3) ? Dist{1} : matrix.at(u, v);
  };
  EXPECT_THROW(next_hop_via(graph, 0, 3, lying), check_error);
}

TEST(PathOracle, DetectsInconsistentMatrix) {
  Rng rng(5);
  const Graph graph = make_path(4, rng, WeightOptions::unit());
  DistBlock lying = reference_apsp(graph);
  lying.at(0, 3) = 1;  // claims a shortcut that no edge supports
  const PathOracle oracle(graph, std::move(lying));
  EXPECT_THROW(oracle.next_hop(0, 3), check_error);
}

}  // namespace
}  // namespace capsp
