// Tests for the machine simulator: message passing semantics, logical
// clocks / critical-path accounting, phase volumes, collectives (values
// and cost shapes), abort behavior.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "machine/collectives.hpp"
#include "machine/machine.hpp"

namespace capsp {
namespace {

std::vector<Dist> payload(std::initializer_list<Dist> values) {
  return values;
}

TEST(Machine, PingPong) {
  Machine machine(2);
  machine.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 7, payload({1.5, 2.5}));
      const auto back = comm.recv(1, 8);
      ASSERT_EQ(back.size(), 1u);
      EXPECT_EQ(back[0], 4.0);
    } else {
      const auto data = comm.recv(0, 7);
      ASSERT_EQ(data.size(), 2u);
      comm.send(0, 8, payload({data[0] + data[1]}));
    }
  });
  // Critical path: 2 messages, 3 words.
  EXPECT_EQ(machine.report().critical_latency, 2);
  EXPECT_EQ(machine.report().critical_bandwidth, 3);
  EXPECT_EQ(machine.report().total_messages, 2);
  EXPECT_EQ(machine.report().total_words, 3);
}

TEST(Machine, TagsDisambiguateMessages) {
  Machine machine(2);
  machine.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 2, payload({2.0}));
      comm.send(1, 1, payload({1.0}));
    } else {
      // Receive in the opposite order of sending.
      EXPECT_EQ(comm.recv(0, 1)[0], 1.0);
      EXPECT_EQ(comm.recv(0, 2)[0], 2.0);
    }
  });
}

TEST(Machine, SameTagDifferentSources) {
  Machine machine(3);
  machine.run([](Comm& comm) {
    if (comm.rank() == 2) {
      EXPECT_EQ(comm.recv(0, 5)[0], 10.0);
      EXPECT_EQ(comm.recv(1, 5)[0], 11.0);
    } else {
      comm.send(2, 5, payload({10.0 + comm.rank()}));
    }
  });
}

TEST(Machine, SelfSendRejected) {
  Machine machine(1);
  EXPECT_THROW(machine.run([](Comm& comm) {
    const std::vector<Dist> data{1.0};
    comm.send(0, 0, data);
  }),
               check_error);
}

TEST(Machine, RankExceptionPropagatesWithoutDeadlock) {
  Machine machine(2);
  EXPECT_THROW(machine.run([](Comm& comm) {
    if (comm.rank() == 0) throw check_error("rank 0 failed");
    comm.recv(0, 0);  // would block forever without the abort path
  }),
               check_error);
}

TEST(Machine, UndeliveredMessageDetected) {
  Machine machine(2);
  EXPECT_THROW(machine.run([](Comm& comm) {
    if (comm.rank() == 0) comm.send(1, 3, payload({1.0}));
  }),
               check_error);
}

TEST(Machine, RunTwiceResetsCosts) {
  Machine machine(2);
  auto program = [](Comm& comm) {
    if (comm.rank() == 0) comm.send(1, 0, payload({1.0}));
    if (comm.rank() == 1) comm.recv(0, 0);
  };
  machine.run(program);
  machine.run(program);
  EXPECT_EQ(machine.report().total_messages, 1);
}

TEST(Clock, DisjointPairsCountOnce) {
  // Ranks 0→1 and 2→3 send simultaneously: critical latency is 1, not 2.
  Machine machine(4);
  machine.run([](Comm& comm) {
    if (comm.rank() == 0) comm.send(1, 0, payload({1.0}));
    if (comm.rank() == 1) comm.recv(0, 0);
    if (comm.rank() == 2) comm.send(3, 0, payload({1.0}));
    if (comm.rank() == 3) comm.recv(2, 0);
  });
  EXPECT_EQ(machine.report().critical_latency, 1);
  EXPECT_EQ(machine.report().total_messages, 2);
}

TEST(Clock, SequentialSendsSerializeAtSender) {
  Machine machine(4);
  machine.run([](Comm& comm) {
    if (comm.rank() == 0) {
      for (RankId r = 1; r < 4; ++r) comm.send(r, 0, payload({1.0}));
    } else {
      comm.recv(0, 0);
    }
  });
  EXPECT_EQ(machine.report().critical_latency, 3);
}

TEST(Clock, SequentialReceivesSerializeAtReceiver) {
  Machine machine(4);
  machine.run([](Comm& comm) {
    if (comm.rank() == 0) {
      for (RankId r = 1; r < 4; ++r) comm.recv(r, 0);
    } else {
      comm.send(0, 0, payload({1.0}));
    }
  });
  EXPECT_EQ(machine.report().critical_latency, 3);
}

TEST(Clock, ChainDepthIsPathLength) {
  Machine machine(5);
  machine.run([](Comm& comm) {
    const RankId r = comm.rank();
    if (r > 0) comm.recv(r - 1, 0);
    if (r < 4) comm.send(r + 1, 0, payload({1.0, 2.0}));
  });
  EXPECT_EQ(machine.report().critical_latency, 4);
  EXPECT_EQ(machine.report().critical_bandwidth, 8);
}

TEST(Clock, ResetClockDropsHistory) {
  Machine machine(2);
  machine.run([](Comm& comm) {
    if (comm.rank() == 0) comm.send(1, 0, payload({1.0}));
    if (comm.rank() == 1) comm.recv(0, 0);
    comm.reset_clock();
    EXPECT_EQ(comm.clock().latency, 0);
    if (comm.rank() == 1) comm.send(0, 1, payload({1.0}));
    if (comm.rank() == 0) comm.recv(1, 1);
  });
  EXPECT_EQ(machine.report().critical_latency, 1);
}

TEST(Phases, VolumesAttributedPerPhase) {
  Machine machine(2);
  machine.run([](Comm& comm) {
    comm.set_phase("alpha");
    if (comm.rank() == 0) comm.send(1, 0, payload({1.0, 2.0}));
    if (comm.rank() == 1) comm.recv(0, 0);
    comm.set_phase("beta");
    if (comm.rank() == 1) comm.send(0, 1, payload({3.0}));
    if (comm.rank() == 0) comm.recv(1, 1);
  });
  const auto& report = machine.report();
  ASSERT_TRUE(report.phase_total.count("alpha"));
  ASSERT_TRUE(report.phase_total.count("beta"));
  EXPECT_EQ(report.phase_total.at("alpha").messages, 1);
  EXPECT_EQ(report.phase_total.at("alpha").words, 2);
  EXPECT_EQ(report.phase_total.at("beta").words, 1);
}

DistBlock constant_block(std::int64_t n, Dist value) {
  return DistBlock(n, n, value);
}

TEST(Collectives, BroadcastDeliversToAllMembers) {
  Machine machine(6);
  const std::vector<RankId> group{0, 2, 3, 5};
  machine.run([&](Comm& comm) {
    if (std::find(group.begin(), group.end(), comm.rank()) == group.end())
      return;
    DistBlock block(2, 2);
    if (comm.rank() == 3) {
      block = constant_block(2, 7.5);
    }
    group_broadcast(comm, group, 3, block, 42);
    EXPECT_EQ(block.at(1, 1), 7.5);
  });
  // Binomial tree over 4 members: 3 messages total, depth 2.
  EXPECT_EQ(machine.report().total_messages, 3);
  EXPECT_EQ(machine.report().critical_latency, 2);
}

TEST(Collectives, BroadcastLatencyIsLogarithmic) {
  for (int size : {2, 4, 8, 16, 32}) {
    Machine machine(size);
    std::vector<RankId> group(static_cast<std::size_t>(size));
    std::iota(group.begin(), group.end(), 0);
    machine.run([&](Comm& comm) {
      DistBlock block(1, 1);
      if (comm.rank() == 0) block = constant_block(1, 1.0);
      group_broadcast(comm, group, 0, block, 0);
    });
    EXPECT_EQ(machine.report().critical_latency, std::log2(size))
        << "size " << size;
    EXPECT_EQ(machine.report().total_messages, size - 1);
  }
}

TEST(Collectives, BroadcastFromNonFirstRoot) {
  Machine machine(5);
  std::vector<RankId> group{0, 1, 2, 3, 4};
  machine.run([&](Comm& comm) {
    DistBlock block(1, 3);
    if (comm.rank() == 2) {
      block.at(0, 0) = 1;
      block.at(0, 1) = 2;
      block.at(0, 2) = 3;
    }
    group_broadcast(comm, group, 2, block, 9);
    EXPECT_EQ(block.at(0, 2), 3);
  });
}

TEST(Collectives, SingletonGroupIsFree) {
  Machine machine(2);
  machine.run([](Comm& comm) {
    if (comm.rank() != 0) return;
    const std::vector<RankId> group{0};
    DistBlock block = constant_block(3, 1.0);
    group_broadcast(comm, group, 0, block, 0);
    group_reduce_min(comm, group, 0, block, 1);
  });
  EXPECT_EQ(machine.report().total_messages, 0);
}

TEST(Collectives, ReduceMinComputesElementwiseMin) {
  Machine machine(4);
  const std::vector<RankId> group{0, 1, 2, 3};
  machine.run([&](Comm& comm) {
    DistBlock block(2, 2, static_cast<Dist>(10 + comm.rank()));
    block.at(0, 1) = -comm.rank();
    group_reduce_min(comm, group, 0, block, 5);
    if (comm.rank() == 0) {
      EXPECT_EQ(block.at(0, 0), 10.0);
      EXPECT_EQ(block.at(0, 1), -3.0);
    } else {
      // Non-root contributions unchanged.
      EXPECT_EQ(block.at(0, 0), 10.0 + comm.rank());
    }
  });
  EXPECT_EQ(machine.report().total_messages, 3);
  EXPECT_EQ(machine.report().critical_latency, 2);
}

TEST(Collectives, ReduceWithNonFirstRoot) {
  Machine machine(5);
  const std::vector<RankId> group{1, 2, 3, 4};
  machine.run([&](Comm& comm) {
    if (comm.rank() == 0) return;
    DistBlock block(1, 1, static_cast<Dist>(comm.rank()));
    group_reduce_min(comm, group, 3, block, 5);
    if (comm.rank() == 3) {
      EXPECT_EQ(block.at(0, 0), 1.0);
    }
  });
}

TEST(Collectives, ReduceHandlesInfinities) {
  Machine machine(3);
  const std::vector<RankId> group{0, 1, 2};
  machine.run([&](Comm& comm) {
    DistBlock block(1, 2);  // all infinite
    if (comm.rank() == 1) block.at(0, 0) = 4.0;
    group_reduce_min(comm, group, 0, block, 0);
    if (comm.rank() == 0) {
      EXPECT_EQ(block.at(0, 0), 4.0);
      EXPECT_TRUE(is_inf(block.at(0, 1)));
    }
  });
}

TEST(Collectives, GatherCollectsInGroupOrder) {
  Machine machine(3);
  const std::vector<RankId> group{2, 0, 1};
  const std::vector<std::pair<std::int64_t, std::int64_t>> shapes{
      {1, 1}, {1, 1}, {1, 1}};
  machine.run([&](Comm& comm) {
    const DistBlock mine(1, 1, static_cast<Dist>(comm.rank()));
    const auto gathered = group_gather(comm, group, 0, mine, shapes, 0);
    if (comm.rank() == 0) {
      ASSERT_EQ(gathered.size(), 3u);
      EXPECT_EQ(gathered[0].at(0, 0), 2.0);
      EXPECT_EQ(gathered[1].at(0, 0), 0.0);
      EXPECT_EQ(gathered[2].at(0, 0), 1.0);
    } else {
      EXPECT_TRUE(gathered.empty());
    }
  });
}

TEST(Collectives, ScatterDeliversPerMemberBlocks) {
  Machine machine(3);
  const std::vector<RankId> group{0, 1, 2};
  const std::vector<std::pair<std::int64_t, std::int64_t>> shapes{
      {1, 1}, {2, 1}, {1, 2}};
  machine.run([&](Comm& comm) {
    std::vector<DistBlock> blocks;
    if (comm.rank() == 1) {
      blocks = {DistBlock(1, 1, 0.0), DistBlock(2, 1, 1.0),
                DistBlock(1, 2, 2.0)};
    }
    const DistBlock mine =
        group_scatter(comm, group, 1, blocks, shapes, 0);
    EXPECT_EQ(mine.at(0, 0), static_cast<Dist>(comm.rank()));
    EXPECT_EQ(mine.rows(), shapes[static_cast<std::size_t>(comm.rank())].first);
  });
}

TEST(Collectives, DuplicateGroupMemberRejected) {
  Machine machine(2);
  EXPECT_THROW(machine.run([](Comm& comm) {
    const std::vector<RankId> group{0, 0};
    DistBlock block(1, 1);
    if (comm.rank() == 0) group_broadcast(comm, group, 0, block, 0);
  }),
               check_error);
}

TEST(Pipelined, BroadcastDeliversCorrectPayload) {
  for (int size : {2, 3, 5, 8}) {
    Machine machine(size);
    std::vector<RankId> group(static_cast<std::size_t>(size));
    std::iota(group.begin(), group.end(), 0);
    machine.run([&](Comm& comm) {
      DistBlock block(4, 5);
      if (comm.rank() == 1 % size) {
        for (std::int64_t i = 0; i < block.size(); ++i)
          block.data()[static_cast<std::size_t>(i)] = static_cast<Dist>(i);
      }
      group_broadcast(comm, group, 1 % size, block, 0,
                      CollectiveAlgorithm::kPipelined);
      for (std::int64_t i = 0; i < block.size(); ++i)
        ASSERT_EQ(block.data()[static_cast<std::size_t>(i)],
                  static_cast<Dist>(i))
            << "size=" << size << " rank=" << comm.rank();
    });
  }
}

TEST(Pipelined, BroadcastMovesFewerWordsThanTreeForBigGroups) {
  constexpr int kSize = 16;
  constexpr std::int64_t kDim = 40;  // 1600-word payload
  auto run_with = [&](CollectiveAlgorithm algorithm) {
    Machine machine(kSize);
    std::vector<RankId> group(kSize);
    std::iota(group.begin(), group.end(), 0);
    machine.run([&](Comm& comm) {
      DistBlock block(kDim, kDim, comm.rank() == 0 ? 1.0 : kInf);
      group_broadcast(comm, group, 0, block, 0, algorithm);
      EXPECT_EQ(block.at(3, 3), 1.0);
    });
    return machine.report();
  };
  const CostReport tree = run_with(CollectiveAlgorithm::kBinomialTree);
  const CostReport pipe = run_with(CollectiveAlgorithm::kPipelined);
  // Tree: root re-sends the payload log2(16) = 4 times -> 4*1600 words on
  // its clock.  Pipelined: scatter (w) + ring (~w sent + ~w received per
  // rank); the serialized-receive accounting puts it a bit under 3w.
  EXPECT_EQ(tree.critical_bandwidth, 4 * kDim * kDim);
  EXPECT_LT(pipe.critical_bandwidth, 3 * kDim * kDim);
  // ...at the price of Θ(k) messages instead of Θ(log k).
  EXPECT_EQ(tree.critical_latency, 4);
  EXPECT_GE(pipe.critical_latency, kSize - 1);
}

TEST(Pipelined, ReduceMinMatchesTreeReduce) {
  for (int size : {2, 3, 4, 7}) {
    for (int root = 0; root < size; ++root) {
      Machine machine(size);
      std::vector<RankId> group(static_cast<std::size_t>(size));
      std::iota(group.begin(), group.end(), 0);
      machine.run([&](Comm& comm) {
        DistBlock block(3, 3, static_cast<Dist>(10 + comm.rank()));
        block.at(0, comm.rank() % 3) = -static_cast<Dist>(comm.rank());
        group_reduce_min(comm, group, root, block, 0,
                         CollectiveAlgorithm::kPipelined);
        if (comm.rank() == root) {
          EXPECT_EQ(block.at(1, 1), 10.0);  // min of 10..10+size-1
          EXPECT_EQ(block.at(0, (size - 1) % 3),
                    size == 4 ? -3.0 : -static_cast<Dist>(size - 1));
        }
      });
    }
  }
}

TEST(Pipelined, ReduceHandlesEmptyAndTinyPayloads) {
  Machine machine(4);
  const std::vector<RankId> group{0, 1, 2, 3};
  machine.run([&](Comm& comm) {
    DistBlock tiny(1, 1, static_cast<Dist>(comm.rank()));
    group_reduce_min(comm, group, 2, tiny, 0,
                     CollectiveAlgorithm::kPipelined);
    if (comm.rank() == 2) {
      EXPECT_EQ(tiny.at(0, 0), 0.0);
    }
    DistBlock empty(0, 3);
    group_broadcast(comm, group, 0, empty, 1,
                    CollectiveAlgorithm::kPipelined);
    group_reduce_min(comm, group, 0, empty, 2,
                     CollectiveAlgorithm::kPipelined);
  });
}

TEST(Machine, SameTagSamePairIsFifo) {
  // Message matching within one (src, dst, tag) triple is FIFO — the
  // pipelined collectives depend on it, so it gets its own stress test.
  constexpr int kMessages = 200;
  Machine machine(2);
  machine.run([](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < kMessages; ++i)
        comm.send(1, /*tag=*/7, std::vector<Dist>{static_cast<Dist>(i)});
    } else {
      for (int i = 0; i < kMessages; ++i) {
        const auto got = comm.recv(0, 7);
        ASSERT_EQ(got[0], static_cast<Dist>(i)) << "out of order at " << i;
      }
    }
  });
}

TEST(Machine, FifoPerPairEvenWhenInterleavedWithOtherTags) {
  Machine machine(2);
  machine.run([](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 50; ++i) {
        comm.send(1, 1, std::vector<Dist>{static_cast<Dist>(i)});
        comm.send(1, 2, std::vector<Dist>{static_cast<Dist>(100 + i)});
      }
    } else {
      // Drain tag 2 first, then tag 1: both must still be FIFO.
      for (int i = 0; i < 50; ++i)
        ASSERT_EQ(comm.recv(0, 2)[0], static_cast<Dist>(100 + i));
      for (int i = 0; i < 50; ++i)
        ASSERT_EQ(comm.recv(0, 1)[0], static_cast<Dist>(i));
    }
  });
}

TEST(Machine, ManyRanksStress) {
  // 225 ranks (the p used by the benches) exchanging a ring of messages.
  constexpr int kRanks = 225;
  Machine machine(kRanks);
  machine.run([](Comm& comm) {
    const RankId next = (comm.rank() + 1) % kRanks;
    const RankId prev = (comm.rank() + kRanks - 1) % kRanks;
    comm.send(next, 0, std::vector<Dist>{static_cast<Dist>(comm.rank())});
    const auto got = comm.recv(prev, 0);
    EXPECT_EQ(got[0], static_cast<Dist>(prev));
  });
  EXPECT_EQ(machine.report().total_messages, kRanks);
}

}  // namespace
}  // namespace capsp
