// The metrics registry (docs/metrics.md): counters / gauges / log-scale
// histograms, thread-safety of the sharded locks, ScopedMetricsSink
// redirection, the per-rank merge at the end of Machine::run, and the
// JSON round-trip through util/json_parse.hpp.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "machine/machine.hpp"
#include "util/check.hpp"
#include "util/json_parse.hpp"
#include "util/metrics.hpp"

namespace capsp {
namespace {

TEST(Metrics, CounterGaugeBasics) {
  MetricsRegistry reg;
  reg.counter_add("a.b.count");
  reg.counter_add("a.b.count", 4);
  reg.gauge_set("a.b.level", 2.5);
  reg.gauge_set("a.b.level", 1.5);
  reg.gauge_max("a.b.peak", 3.0);
  reg.gauge_max("a.b.peak", 2.0);

  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap.at("a.b.count").kind, MetricKind::kCounter);
  EXPECT_EQ(snap.at("a.b.count").counter, 5);
  EXPECT_EQ(snap.at("a.b.level").gauge, 1.5);  // last write wins
  EXPECT_EQ(snap.at("a.b.peak").gauge, 3.0);   // max wins
}

TEST(Metrics, HistogramPercentileGolden) {
  Histogram h;
  for (int v = 1; v <= 100; ++v) h.observe(v);
  EXPECT_EQ(h.count, 100);
  EXPECT_EQ(h.min, 1.0);
  EXPECT_EQ(h.max, 100.0);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  // Median lands in bucket (32, 64]; its upper bound is the estimate.
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 64.0);
  // p95 lands in bucket (64, 128] but is clamped to the exact max.
  EXPECT_DOUBLE_EQ(h.percentile(0.95), 100.0);
}

TEST(Metrics, HistogramSingleValueExact) {
  Histogram h;
  for (int i = 0; i < 7; ++i) h.observe(42.0);
  // Clamping into [min, max] makes single-valued distributions exact.
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 42.0);
  EXPECT_DOUBLE_EQ(h.mean(), 42.0);
}

TEST(Metrics, HistogramSubUnitValues) {
  Histogram h;
  h.observe(0.25);
  h.observe(0.5);
  h.observe(1.0);
  // All of these live in bucket 0 (values <= 1); clamped to [min, max].
  EXPECT_EQ(h.count, 3);
  EXPECT_GE(h.percentile(0.5), 0.25);
  EXPECT_LE(h.percentile(0.5), 1.0);
}

TEST(Metrics, HistogramMerge) {
  Histogram a, b;
  for (int v = 1; v <= 50; ++v) a.observe(v);
  for (int v = 51; v <= 100; ++v) b.observe(v);
  a.merge(b);
  EXPECT_EQ(a.count, 100);
  EXPECT_EQ(a.min, 1.0);
  EXPECT_EQ(a.max, 100.0);
  EXPECT_DOUBLE_EQ(a.mean(), 50.5);
  EXPECT_DOUBLE_EQ(a.percentile(0.5), 64.0);
}

TEST(Metrics, ObserveFeedsHistogram) {
  MetricsRegistry reg;
  reg.observe("x.y.sizes", 3.0);
  reg.observe("x.y.sizes", 5.0);
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.at("x.y.sizes").kind, MetricKind::kHistogram);
  EXPECT_EQ(snap.at("x.y.sizes").histogram.count, 2);
  EXPECT_DOUBLE_EQ(snap.at("x.y.sizes").histogram.mean(), 4.0);
}

TEST(Metrics, KindConflictThrows) {
  MetricsRegistry reg;
  reg.counter_add("same.name");
  EXPECT_THROW(reg.observe("same.name", 1.0), check_error);
  EXPECT_THROW(reg.gauge_set("same.name", 1.0), check_error);
}

TEST(Metrics, MergeFromCombines) {
  MetricsRegistry a, b;
  a.counter_add("c", 2);
  b.counter_add("c", 3);
  a.gauge_max("g", 1.0);
  b.gauge_max("g", 5.0);
  b.observe("h", 7.0);
  a.merge_from(b);
  const MetricsSnapshot snap = a.snapshot();
  EXPECT_EQ(snap.at("c").counter, 5);
  EXPECT_EQ(snap.at("g").gauge, 5.0);
  EXPECT_EQ(snap.at("h").histogram.count, 1);
}

TEST(Metrics, ClearEmpties) {
  MetricsRegistry reg;
  reg.counter_add("c");
  reg.clear();
  EXPECT_TRUE(reg.snapshot().empty());
}

TEST(Metrics, ScopedSinkRedirectsAndRestores) {
  MetricsRegistry outer;
  MetricsRegistry inner;
  const ScopedMetricsSink outer_sink(outer);
  metrics().counter_add("hit");
  {
    const ScopedMetricsSink inner_sink(inner);
    metrics().counter_add("hit", 10);
  }
  metrics().counter_add("hit");
  EXPECT_EQ(outer.snapshot().at("hit").counter, 2);
  EXPECT_EQ(inner.snapshot().at("hit").counter, 10);
}

TEST(Metrics, ThreadSafetyUnderConcurrentUpdates) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      for (int i = 0; i < kIters; ++i) {
        reg.counter_add("shared.counter");
        reg.counter_add("per.thread." + std::to_string(t));
        reg.observe("shared.histogram", static_cast<double>(i % 64 + 1));
        reg.gauge_max("shared.peak", static_cast<double>(i));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.at("shared.counter").counter, kThreads * kIters);
  EXPECT_EQ(snap.at("shared.histogram").histogram.count, kThreads * kIters);
  EXPECT_EQ(snap.at("shared.peak").gauge, kIters - 1);
  for (int t = 0; t < kThreads; ++t)
    EXPECT_EQ(snap.at("per.thread." + std::to_string(t)).counter, kIters);
}

TEST(Metrics, MachineRunMergesPerRankSinks) {
  MetricsRegistry caller;
  const ScopedMetricsSink sink(caller);
  Machine machine(4);
  machine.run([](Comm& comm) {
    metrics().counter_add("test.rank.ticks", comm.rank() + 1);
    if (comm.rank() == 0) {
      comm.send(1, 7, std::vector<Dist>(3, 1.0));
    } else if (comm.rank() == 1) {
      comm.recv(0, 7);
    }
  });
  const MetricsSnapshot snap = caller.snapshot();
  // 1 + 2 + 3 + 4 from the rank bodies, merged deterministically.
  EXPECT_EQ(snap.at("test.rank.ticks").counter, 10);
  // The comm fabric instruments itself: one frame of three words.
  EXPECT_EQ(snap.at("machine.comm.frames").counter, 1);
  EXPECT_EQ(snap.at("machine.comm.words").counter, 3);
  EXPECT_EQ(snap.at("machine.run.count").counter, 1);
  EXPECT_EQ(snap.at("machine.run.ranks").gauge, 4.0);
}

TEST(Metrics, JsonRoundTrip) {
  MetricsRegistry reg;
  reg.counter_add("a.count", 12);
  reg.gauge_set("a.gauge", 2.5);
  for (int v = 1; v <= 8; ++v) reg.observe("a.hist", v);

  std::ostringstream out;
  write_metrics_json(out, reg);
  const JsonValue doc = parse_json(out.str());
  const JsonValue* m = doc.find("metrics");
  ASSERT_NE(m, nullptr);
  ASSERT_NE(m->find("a.count"), nullptr);
  EXPECT_EQ(m->find("a.count")->find("kind")->string, "counter");
  EXPECT_EQ(m->find("a.count")->find("value")->number, 12.0);
  EXPECT_EQ(m->find("a.gauge")->find("value")->number, 2.5);
  const JsonValue* h = m->find("a.hist");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->find("count")->number, 8.0);
  EXPECT_EQ(h->find("min")->number, 1.0);
  EXPECT_EQ(h->find("max")->number, 8.0);
  EXPECT_DOUBLE_EQ(h->find("mean")->number, 4.5);
}

}  // namespace
}  // namespace capsp
