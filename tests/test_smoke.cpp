// End-to-end smoke tests: the full pre-process → schedule → distributed
// run pipeline against the sequential oracle on small graphs.
#include <gtest/gtest.h>

#include "baseline/dc_apsp.hpp"
#include "baseline/fw2d.hpp"
#include "baseline/reference.hpp"
#include "core/sparse_apsp.hpp"
#include "core/superfw.hpp"
#include "graph/generators.hpp"

namespace capsp {
namespace {

void expect_matrix_eq(const DistBlock& got, const DistBlock& want) {
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  for (std::int64_t r = 0; r < got.rows(); ++r)
    for (std::int64_t c = 0; c < got.cols(); ++c)
      ASSERT_NEAR(got.at(r, c), want.at(r, c), 1e-9)
          << "mismatch at (" << r << "," << c << ")";
}

TEST(Smoke, SuperFwMatchesOracleOnGrid) {
  Rng rng(7);
  const Graph graph = make_grid2d(6, 6, rng);
  const DistBlock want = reference_apsp(graph);
  Rng nd_rng(3);
  const Dissection nd = nested_dissection(graph, 3, nd_rng);
  const SuperFwResult got = superfw_original_order(graph, nd);
  expect_matrix_eq(got.distances, want);
}

TEST(Smoke, SparseApspMatchesOracleOnGrid) {
  Rng rng(7);
  const Graph graph = make_grid2d(6, 6, rng);
  const DistBlock want = reference_apsp(graph);
  SparseApspOptions options;
  options.height = 2;  // p = 9
  const SparseApspResult got = run_sparse_apsp(graph, options);
  expect_matrix_eq(got.distances, want);
}

TEST(Smoke, SparseApspHeight3OnGrid) {
  Rng rng(11);
  const Graph graph = make_grid2d(8, 8, rng);
  const DistBlock want = reference_apsp(graph);
  SparseApspOptions options;
  options.height = 3;  // p = 49
  const SparseApspResult got = run_sparse_apsp(graph, options);
  expect_matrix_eq(got.distances, want);
}

TEST(Smoke, DcApspMatchesOracle) {
  Rng rng(5);
  const Graph graph = make_grid2d(5, 7, rng);
  const DistBlock want = reference_apsp(graph);
  const DistributedApspResult got = run_dc_apsp(graph, 2);
  expect_matrix_eq(got.distances, want);
}

TEST(Smoke, Fw2dMatchesOracle) {
  Rng rng(5);
  const Graph graph = make_grid2d(5, 7, rng);
  const DistBlock want = reference_apsp(graph);
  const DistributedApspResult got = run_fw2d(graph, 2, 4);
  expect_matrix_eq(got.distances, want);
}

}  // namespace
}  // namespace capsp
