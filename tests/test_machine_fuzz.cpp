// Randomized stress tests of the machine simulator and collectives:
// arbitrary communication patterns checked against locally computed
// expectations, and collectives over random groups checked against a
// naive direct-send reference.  The simulator carries every distributed
// result in this repository, so it gets fuzzed hardest.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>

#include "machine/collectives.hpp"
#include "machine/machine.hpp"
#include "semiring/kernels.hpp"
#include "util/rng.hpp"

namespace capsp {
namespace {

TEST(MachineFuzz, RandomPointToPointPatterns) {
  // Generate a random set of (src, dst, tag, payload) messages; every
  // rank sends its share in a random order and receives its share in a
  // different random order.  All payloads must arrive intact.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng(900 + seed);
    const int p = static_cast<int>(2 + rng.uniform(9));
    struct Msg {
      RankId src, dst;
      Tag tag;
      std::vector<Dist> payload;
    };
    std::vector<Msg> messages;
    const int count = static_cast<int>(20 + rng.uniform(60));
    for (int i = 0; i < count; ++i) {
      Msg m;
      m.src = static_cast<RankId>(rng.uniform(static_cast<std::uint64_t>(p)));
      do {
        m.dst = static_cast<RankId>(rng.uniform(static_cast<std::uint64_t>(p)));
      } while (m.dst == m.src);
      m.tag = i;  // unique tags keep matching unambiguous
      const auto words = rng.uniform(20);
      for (std::uint64_t w = 0; w < words; ++w)
        m.payload.push_back(rng.uniform_real(-5, 5));
      messages.push_back(std::move(m));
    }
    // Per-rank send/recv orders, shuffled deterministically.
    std::vector<std::vector<int>> send_order(static_cast<std::size_t>(p));
    std::vector<std::vector<int>> recv_order(static_cast<std::size_t>(p));
    for (int i = 0; i < count; ++i) {
      send_order[static_cast<std::size_t>(messages[static_cast<std::size_t>(i)].src)]
          .push_back(i);
      recv_order[static_cast<std::size_t>(messages[static_cast<std::size_t>(i)].dst)]
          .push_back(i);
    }
    for (auto& order : recv_order)
      for (std::size_t i = order.size(); i > 1; --i)
        std::swap(order[i - 1], order[rng.uniform(i)]);

    Machine machine(p);
    machine.run([&](Comm& comm) {
      for (int i : send_order[static_cast<std::size_t>(comm.rank())]) {
        const auto& m = messages[static_cast<std::size_t>(i)];
        comm.send(m.dst, m.tag, m.payload);
      }
      for (int i : recv_order[static_cast<std::size_t>(comm.rank())]) {
        const auto& m = messages[static_cast<std::size_t>(i)];
        const auto got = comm.recv(m.src, m.tag);
        ASSERT_EQ(got, m.payload) << "seed " << seed << " msg " << i;
      }
    });
    std::int64_t words = 0;
    for (const auto& m : messages)
      words += static_cast<std::int64_t>(m.payload.size());
    EXPECT_EQ(machine.report().total_messages, count);
    EXPECT_EQ(machine.report().total_words, words);
  }
}

TEST(MachineFuzz, RandomGroupsBroadcastBothAlgorithms) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    Rng rng(1200 + seed);
    const int p = static_cast<int>(3 + rng.uniform(10));
    // Random subset of ranks as the group, random root, random payload.
    std::vector<RankId> group;
    for (RankId r = 0; r < p; ++r)
      if (rng.bernoulli(0.6)) group.push_back(r);
    if (group.size() < 2) group = {0, static_cast<RankId>(p - 1)};
    const RankId root = group[rng.uniform(group.size())];
    const std::int64_t rows = static_cast<std::int64_t>(1 + rng.uniform(6));
    const std::int64_t cols = static_cast<std::int64_t>(1 + rng.uniform(6));
    DistBlock payload(rows, cols);
    for (auto& v : payload.data()) v = rng.uniform_real(0, 99);

    for (auto algorithm : {CollectiveAlgorithm::kBinomialTree,
                           CollectiveAlgorithm::kPipelined}) {
      Machine machine(p);
      machine.run([&](Comm& comm) {
        if (std::find(group.begin(), group.end(), comm.rank()) ==
            group.end())
          return;
        DistBlock block(rows, cols);
        if (comm.rank() == root) block = payload;
        group_broadcast(comm, group, root, block, 7, algorithm);
        ASSERT_EQ(block, payload)
            << "seed " << seed << " rank " << comm.rank();
      });
    }
  }
}

TEST(MachineFuzz, RandomGroupsReduceAgainstNaive) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    Rng rng(1500 + seed);
    const int p = static_cast<int>(3 + rng.uniform(10));
    std::vector<RankId> group;
    for (RankId r = 0; r < p; ++r)
      if (rng.bernoulli(0.7)) group.push_back(r);
    if (group.size() < 2) group = {0, 1};
    const RankId root = group[rng.uniform(group.size())];
    const std::int64_t dim = static_cast<std::int64_t>(1 + rng.uniform(5));

    // Contributions and the expected elementwise min.
    std::map<RankId, DistBlock> contribution;
    DistBlock expected(dim, dim);
    for (RankId r : group) {
      DistBlock block(dim, dim);
      for (auto& v : block.data())
        v = rng.bernoulli(0.2) ? kInf : rng.uniform_real(-10, 10);
      elementwise_min(expected, block);
      contribution.emplace(r, std::move(block));
    }

    for (auto algorithm : {CollectiveAlgorithm::kBinomialTree,
                           CollectiveAlgorithm::kPipelined}) {
      Machine machine(p);
      machine.run([&](Comm& comm) {
        if (!contribution.count(comm.rank())) return;
        DistBlock block = contribution.at(comm.rank());
        group_reduce_min(comm, group, root, block, 3, algorithm);
        if (comm.rank() == root) {
          ASSERT_EQ(block, expected) << "seed " << seed;
        }
      });
    }
  }
}

TEST(MachineFuzz, InterleavedCollectivesOnDisjointGroups) {
  // Two disjoint groups run collectives with the same tag concurrently —
  // they must not interfere (disjoint rank pairs).
  Machine machine(8);
  const std::vector<RankId> group_a{0, 1, 2, 3};
  const std::vector<RankId> group_b{4, 5, 6, 7};
  machine.run([&](Comm& comm) {
    const bool in_a = comm.rank() < 4;
    const auto& group = in_a ? group_a : group_b;
    const RankId root = in_a ? 1 : 6;
    DistBlock block(2, 2);
    if (comm.rank() == root) block = DistBlock(2, 2, in_a ? 1.0 : 2.0);
    group_broadcast(comm, group, root, block, 0);
    EXPECT_EQ(block.at(0, 0), in_a ? 1.0 : 2.0);
    group_reduce_min(comm, group, root, block, 1);
  });
}

TEST(MachineFuzz, ManySmallMachinesSequentially) {
  // Machine construction/teardown is cheap and leak-free across many
  // iterations (the test harness itself would hang on leaked threads).
  for (int iteration = 0; iteration < 50; ++iteration) {
    Machine machine(3);
    machine.run([](Comm& comm) {
      if (comm.rank() == 0)
        comm.send(1, 0, std::vector<Dist>{1.0});
      if (comm.rank() == 1) comm.recv(0, 0);
    });
  }
}

}  // namespace
}  // namespace capsp
