// Edge-case hardening across the public API: empty and degenerate
// graphs, extreme machine shapes, the height recommender, and the
// largest machine the benches use (p = 961) end-to-end with result
// collection.
#include <gtest/gtest.h>

#include "baseline/dc_apsp.hpp"
#include "baseline/fw2d.hpp"
#include "baseline/reference.hpp"
#include "core/path_oracle.hpp"
#include "core/sparse_apsp.hpp"
#include "graph/generators.hpp"

namespace capsp {
namespace {

TEST(EdgeCases, EmptyGraphAllAlgorithms) {
  const Graph empty = std::move(GraphBuilder(0)).build();
  SparseApspOptions options;
  options.height = 2;
  const SparseApspResult sparse = run_sparse_apsp(empty, options);
  EXPECT_EQ(sparse.distances.rows(), 0);
  const DistributedApspResult dc = run_dc_apsp(empty, 2);
  EXPECT_EQ(dc.distances.rows(), 0);
  EXPECT_EQ(reference_apsp(empty).rows(), 0);
}

TEST(EdgeCases, TwoVertexGraph) {
  GraphBuilder builder(2);
  builder.add_edge(0, 1, 3.5);
  const Graph graph = std::move(builder).build();
  SparseApspOptions options;
  options.height = 3;  // far more supernodes than vertices
  const SparseApspResult result = run_sparse_apsp(graph, options);
  EXPECT_EQ(result.distances.at(0, 1), 3.5);
  EXPECT_EQ(result.distances.at(1, 0), 3.5);
  EXPECT_EQ(result.distances.at(0, 0), 0);
}

TEST(EdgeCases, EdgelessGraphEverythingUnreachable) {
  const Graph graph = std::move(GraphBuilder(10)).build();
  SparseApspOptions options;
  options.height = 2;
  const SparseApspResult result = run_sparse_apsp(graph, options);
  for (Vertex u = 0; u < 10; ++u)
    for (Vertex v = 0; v < 10; ++v)
      EXPECT_EQ(is_inf(result.distances.at(u, v)), u != v);
}

TEST(EdgeCases, AllEdgesSameWeight) {
  Rng rng(1);
  const Graph graph = make_grid2d(7, 7, rng, WeightOptions::unit());
  SparseApspOptions options;
  options.height = 2;
  const SparseApspResult result = run_sparse_apsp(graph, options);
  // Distances equal hop counts == Manhattan distance on the grid.
  EXPECT_EQ(result.distances.at(0, 48), 12);  // corner to corner: 6+6
  EXPECT_EQ(result.distances.at(0, 6), 6);
}

TEST(EdgeCases, VeryLargeWeights) {
  GraphBuilder builder(3);
  builder.add_edge(0, 1, 1e300);
  builder.add_edge(1, 2, 1e300);
  const Graph graph = std::move(builder).build();
  SparseApspOptions options;
  options.height = 2;
  const SparseApspResult result = run_sparse_apsp(graph, options);
  EXPECT_EQ(result.distances.at(0, 2), 2e300);
  EXPECT_FALSE(is_inf(result.distances.at(0, 2)));
}

TEST(EdgeCases, Height5FullPipelineWithCollection) {
  // p = 961 simulated ranks, with result collection and oracle check.
  Rng rng(2);
  const Graph graph = make_grid2d(12, 12, rng);
  SparseApspOptions options;
  options.height = 5;
  const SparseApspResult result = run_sparse_apsp(graph, options);
  EXPECT_EQ(result.num_ranks, 961);
  const DistBlock want = reference_apsp(graph);
  for (Vertex u = 0; u < graph.num_vertices(); ++u)
    for (Vertex v = 0; v < graph.num_vertices(); ++v)
      ASSERT_NEAR(result.distances.at(u, v), want.at(u, v), 1e-9);
  // The oracle must be able to route over the result.
  const PathOracle oracle(graph, result.distances);
  EXPECT_FALSE(oracle.shortest_path(0, 143).empty());
}

TEST(EdgeCases, Fw2dSingleRank) {
  Rng rng(3);
  const Graph graph = make_grid2d(4, 5, rng);
  const DistributedApspResult result = run_fw2d(graph, 1, 4);
  const DistBlock want = reference_apsp(graph);
  EXPECT_EQ(result.distances, want);
  EXPECT_EQ(result.costs.total_messages, 0);  // one rank: all local
}

TEST(EdgeCases, DcSingleRank) {
  Rng rng(4);
  const Graph graph = make_grid2d(4, 4, rng);
  const DistributedApspResult result = run_dc_apsp(graph, 1);
  EXPECT_EQ(result.distances, reference_apsp(graph));
}

TEST(RecommendHeight, RespectsRankBudget) {
  Rng rng(5);
  const Graph big = make_grid2d(40, 40, rng);
  EXPECT_EQ(recommend_height(big, 9), 2);     // (2^2-1)^2 = 9 fits
  EXPECT_EQ(recommend_height(big, 8), 1);     // 9 > 8
  EXPECT_EQ(recommend_height(big, 49), 3);
  EXPECT_EQ(recommend_height(big, 960), 4);     // 961 > 960
  EXPECT_EQ(recommend_height(big, 100000), 6);  // capped by the simulator's
                                                // 4096-rank machine limit
}

TEST(RecommendHeight, SmallGraphsStayShallow) {
  Rng rng(6);
  const Graph tiny = make_path(10, rng);
  EXPECT_LE(recommend_height(tiny), 2);
  const Graph empty = std::move(GraphBuilder(0)).build();
  EXPECT_EQ(recommend_height(empty), 1);
}

TEST(RecommendHeight, RecommendedHeightActuallyWorks) {
  Rng rng(7);
  const Graph graph = make_random_geometric(120, 0.18, rng);
  const int h = recommend_height(graph, 225);
  SparseApspOptions options;
  options.height = h;
  const SparseApspResult result = run_sparse_apsp(graph, options);
  const DistBlock want = reference_apsp(graph);
  for (Vertex u = 0; u < graph.num_vertices(); ++u)
    for (Vertex v = 0; v < graph.num_vertices(); ++v) {
      if (is_inf(want.at(u, v))) {
        ASSERT_TRUE(is_inf(result.distances.at(u, v)));
      } else {
        ASSERT_NEAR(result.distances.at(u, v), want.at(u, v), 1e-9);
      }
    }
}

}  // namespace
}  // namespace capsp
