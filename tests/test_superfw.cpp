// Unit tests for SuperFW beyond the oracle comparisons in the
// integration suite: operation accounting, skipped-block census, the
// elimination-order invariant (cousin panels stay empty until their
// common ancestor is eliminated), and behaviour on degenerate inputs.
#include <gtest/gtest.h>

#include "baseline/reference.hpp"
#include "core/superfw.hpp"
#include "graph/generators.hpp"
#include "semiring/graph_matrix.hpp"
#include "semiring/kernels.hpp"

namespace capsp {
namespace {

TEST(SuperFw, HeightOneEqualsClassicalFw) {
  Rng rng(1);
  const Graph graph = make_erdos_renyi(30, 3.0, rng);
  Rng nd_rng(2);
  const Dissection nd = nested_dissection(graph, 1, nd_rng);
  const SuperFwResult result = superfw(apply_dissection(graph, nd), nd);
  DistBlock direct = to_distance_matrix(apply_dissection(graph, nd));
  const std::int64_t direct_ops = classical_fw(direct);
  EXPECT_EQ(result.distances, direct);
  // One supernode: same diagonal FW plus no panels/outer products.
  EXPECT_EQ(result.ops, direct_ops);
  EXPECT_EQ(result.skipped_blocks, 0);
}

TEST(SuperFw, OpsAreCountedNotEstimated) {
  // ops must equal what the kernels report when run on the same schedule;
  // spot-check that a disconnected graph (maximal skipping) performs far
  // fewer operations than its dense counterpart.
  Rng rng(3);
  GraphBuilder builder(32);
  for (Vertex c = 0; c < 4; ++c)
    for (Vertex i = 0; i < 7; ++i)
      builder.add_edge(c * 8 + i, c * 8 + i + 1, 1);
  const Graph graph = std::move(builder).build();  // 4 paths of 8
  Rng nd_rng(4);
  const Dissection nd = nested_dissection(graph, 3, nd_rng);
  const SuperFwResult result = superfw_original_order(graph, nd);
  DistBlock dense(32, 32, 1.0);
  const std::int64_t dense_ops = classical_fw(dense);
  EXPECT_LT(result.ops, dense_ops / 4);
  EXPECT_EQ(result.distances, reference_apsp(graph));
}

TEST(SuperFw, SkippedBlocksGrowWithTreeDepth) {
  Rng rng(5);
  const Graph graph = make_grid2d(12, 12, rng);
  std::int64_t previous = -1;
  for (int height : {2, 3, 4}) {
    Rng nd_rng(6);
    const Dissection nd = nested_dissection(graph, height, nd_rng);
    const SuperFwResult result = superfw(apply_dissection(graph, nd), nd);
    EXPECT_GT(result.skipped_blocks, previous);
    previous = result.skipped_blocks;
  }
}

TEST(SuperFw, CousinPanelsStayEmptyUntilCommonAncestor) {
  // The invariant that justifies skipping (Sec. 4.2): right before
  // supernode k is eliminated, A(i,k) is all-infinite for every cousin i
  // of k.  We verify by running the elimination manually level by level.
  Rng rng(7);
  const Graph graph = make_grid2d(10, 10, rng);
  Rng nd_rng(8);
  const Dissection nd = nested_dissection(graph, 3, nd_rng);
  const Graph reordered = apply_dissection(graph, nd);
  const EliminationTree& tree = nd.tree;

  // Replay SuperFW but check the invariant before each pivot.
  DistBlock a = to_distance_matrix(reordered);
  for (int l = 1; l <= tree.height(); ++l) {
    for (Snode k : tree.level_set(l)) {
      for (Snode i = 1; i <= tree.num_supernodes(); ++i) {
        if (!tree.is_cousin(i, k)) continue;
        const auto& ri = nd.range_of(i);
        const auto& rk = nd.range_of(k);
        for (Vertex r = ri.begin; r < ri.end; ++r)
          for (Vertex c = rk.begin; c < rk.end; ++c)
            ASSERT_TRUE(is_inf(a.at(r, c)))
                << "A(" << i << "," << k << ") finite before eliminating "
                << k;
      }
    }
    // Eliminate the level (same math as superfw()).
    for (Snode k : tree.level_set(l)) {
      const auto& rk = nd.range_of(k);
      DistBlock akk = a.sub_block(rk.begin, rk.begin, rk.size(), rk.size());
      classical_fw(akk);
      a.set_sub_block(rk.begin, rk.begin, akk);
      std::vector<Snode> related = tree.descendants(k);
      const auto anc = tree.ancestors(k);
      related.insert(related.end(), anc.begin(), anc.end());
      for (Snode i : related) {
        const auto& ri = nd.range_of(i);
        DistBlock aik = a.sub_block(ri.begin, rk.begin, ri.size(), rk.size());
        minplus_accumulate(aik, aik, akk);
        a.set_sub_block(ri.begin, rk.begin, aik);
        DistBlock aki = a.sub_block(rk.begin, ri.begin, rk.size(), ri.size());
        minplus_accumulate(aki, akk, aki);
        a.set_sub_block(rk.begin, ri.begin, aki);
      }
      for (Snode i : related) {
        const auto& ri = nd.range_of(i);
        const DistBlock aik =
            a.sub_block(ri.begin, rk.begin, ri.size(), rk.size());
        for (Snode j : related) {
          const auto& rj = nd.range_of(j);
          DistBlock aij =
              a.sub_block(ri.begin, rj.begin, ri.size(), rj.size());
          const DistBlock akj =
              a.sub_block(rk.begin, rj.begin, rk.size(), rj.size());
          minplus_accumulate(aij, aik, akj);
          a.set_sub_block(ri.begin, rj.begin, aij);
        }
      }
    }
  }
  // And the replay must be a correct APSP.
  DistBlock want = to_distance_matrix(reordered);
  classical_fw(want);
  EXPECT_EQ(a, want);
}

TEST(SuperFw, OriginalOrderUndoesThePermutation) {
  Rng rng(9);
  const Graph graph = make_random_geometric(40, 0.25, rng);
  Rng nd_rng(10);
  const Dissection nd = nested_dissection(graph, 2, nd_rng);
  const SuperFwResult result = superfw_original_order(graph, nd);
  const DistBlock want = reference_apsp(graph);
  for (Vertex u = 0; u < graph.num_vertices(); ++u)
    for (Vertex v = 0; v < graph.num_vertices(); ++v) {
      if (is_inf(want.at(u, v))) {
        EXPECT_TRUE(is_inf(result.distances.at(u, v)));
      } else {
        EXPECT_NEAR(result.distances.at(u, v), want.at(u, v), 1e-9);
      }
    }
}

TEST(SuperFw, EmptyAndSingletonGraphs) {
  Rng rng(11);
  const Graph single = std::move(GraphBuilder(1)).build();
  Rng nd_rng(12);
  const Dissection nd1 = nested_dissection(single, 2, nd_rng);
  const SuperFwResult r1 = superfw_original_order(single, nd1);
  EXPECT_EQ(r1.distances.at(0, 0), 0);

  const Graph edgeless = std::move(GraphBuilder(6)).build();
  const Dissection nd2 = nested_dissection(edgeless, 2, nd_rng);
  const SuperFwResult r2 = superfw_original_order(edgeless, nd2);
  for (Vertex u = 0; u < 6; ++u)
    for (Vertex v = 0; v < 6; ++v)
      EXPECT_EQ(is_inf(r2.distances.at(u, v)), u != v);
}

}  // namespace
}  // namespace capsp
