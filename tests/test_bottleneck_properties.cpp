// Property/metamorphic tests for the (max, min) closure — the widest-path
// analogues of the min-plus invariants in test_properties.cpp.
#include <gtest/gtest.h>

#include <set>

#include "core/closure.hpp"
#include "core/sparse_apsp.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

namespace capsp {
namespace {

WeightOptions capacities() {
  WeightOptions opts;
  opts.min_weight = 1;
  opts.max_weight = 30;
  return opts;
}

class BottleneckProperties : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Graph make_graph() const {
    Rng rng(GetParam());
    switch (GetParam() % 3) {
      case 0: return make_grid2d(7, 7, rng, capacities());
      case 1: return make_erdos_renyi(45, 4.0, rng, capacities());
      default: return make_random_geometric(40, 0.28, rng, capacities());
    }
  }
};

TEST_P(BottleneckProperties, SymmetricWithInfDiagonal) {
  const Graph graph = make_graph();
  const DistBlock width = bottleneck_apsp(graph);
  for (Vertex u = 0; u < graph.num_vertices(); ++u) {
    EXPECT_TRUE(is_inf(width.at(u, u)));
    for (Vertex v = 0; v < graph.num_vertices(); ++v)
      EXPECT_EQ(width.at(u, v), width.at(v, u));
  }
}

TEST_P(BottleneckProperties, MaxMinTriangleInequality) {
  // width(u,v) >= min(width(u,w), width(w,v)): any u→w→v concatenation is
  // itself a u→v path.
  const Graph graph = make_graph();
  const DistBlock width = bottleneck_apsp(graph);
  Rng rng(GetParam() + 1);
  const auto n = static_cast<std::uint64_t>(graph.num_vertices());
  for (int trial = 0; trial < 1500; ++trial) {
    const auto u = static_cast<Vertex>(rng.uniform(n));
    const auto v = static_cast<Vertex>(rng.uniform(n));
    const auto w = static_cast<Vertex>(rng.uniform(n));
    EXPECT_GE(width.at(u, v),
              std::min(width.at(u, w), width.at(w, v)) - 1e-12)
        << u << "->" << w << "->" << v;
  }
}

TEST_P(BottleneckProperties, WidthAtLeastDirectEdgeAndAtMostMaxEdge) {
  const Graph graph = make_graph();
  const DistBlock width = bottleneck_apsp(graph);
  Weight max_edge = 0;
  for (Vertex u = 0; u < graph.num_vertices(); ++u)
    for (const auto& nb : graph.neighbors(u)) {
      EXPECT_GE(width.at(u, nb.to), nb.weight);
      max_edge = std::max(max_edge, nb.weight);
    }
  for (Vertex u = 0; u < graph.num_vertices(); ++u)
    for (Vertex v = 0; v < graph.num_vertices(); ++v)
      if (u != v && width.at(u, v) > 0) {
        EXPECT_LE(width.at(u, v), max_edge);
      }
}

TEST_P(BottleneckProperties, PositiveExactlyWithinComponents) {
  const Graph graph = make_graph();
  const DistBlock width = bottleneck_apsp(graph);
  const auto label = connected_components(graph);
  for (Vertex u = 0; u < graph.num_vertices(); ++u)
    for (Vertex v = 0; v < graph.num_vertices(); ++v) {
      if (u == v) continue;
      EXPECT_EQ(width.at(u, v) > 0,
                label[static_cast<std::size_t>(u)] ==
                    label[static_cast<std::size_t>(v)]);
    }
}

TEST_P(BottleneckProperties, RaisingACapacityNeverNarrowsAnyPair) {
  const Graph graph = make_graph();
  const DistBlock before = bottleneck_apsp(graph);
  // Double the capacity of one arbitrary edge.
  Rng rng(GetParam() + 2);
  GraphBuilder builder(graph.num_vertices());
  bool boosted = false;
  for (Vertex u = 0; u < graph.num_vertices(); ++u)
    for (const auto& nb : graph.neighbors(u)) {
      if (u >= nb.to) continue;
      const bool boost = !boosted && rng.bernoulli(0.05);
      builder.add_edge(u, nb.to, boost ? nb.weight * 2 : nb.weight);
      boosted |= boost;
    }
  const DistBlock after = bottleneck_apsp(std::move(builder).build());
  for (Vertex u = 0; u < graph.num_vertices(); ++u)
    for (Vertex v = 0; v < graph.num_vertices(); ++v)
      EXPECT_GE(after.at(u, v), before.at(u, v)) << u << "," << v;
}

TEST_P(BottleneckProperties, WidthValuesAreExistingEdgeWeights) {
  // A bottleneck is attained on some edge, so every finite positive width
  // must literally be one of the graph's edge weights.
  const Graph graph = make_graph();
  const DistBlock width = bottleneck_apsp(graph);
  std::set<Weight> weights;
  for (Vertex u = 0; u < graph.num_vertices(); ++u)
    for (const auto& nb : graph.neighbors(u)) weights.insert(nb.weight);
  for (Vertex u = 0; u < graph.num_vertices(); ++u)
    for (Vertex v = 0; v < graph.num_vertices(); ++v) {
      const Dist w = width.at(u, v);
      if (u == v || w <= 0) continue;
      EXPECT_TRUE(weights.count(w)) << "width " << w << " is not an edge";
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BottleneckProperties,
                         ::testing::Values(101u, 202u, 303u));

}  // namespace
}  // namespace capsp
