// Tests for the closed-semiring generalization: semiring laws, the
// generic kernels against naive references, bottleneck paths against a
// maximizing-Dijkstra oracle, transitive closure against BFS, and the
// key structural claim — the supernodal elimination schedule is
// semiring-generic (Carré), verified by running it over MaxMin.
#include <gtest/gtest.h>

#include "core/closure.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "semiring/kernels.hpp"
#include "semiring/semirings.hpp"

namespace capsp {
namespace {

template <typename S>
void check_semiring_laws(const std::vector<Dist>& values) {
  for (Dist a : values) {
    // Identities.
    EXPECT_EQ(S::plus(a, S::zero()), a);
    EXPECT_EQ(S::plus(S::zero(), a), a);
    EXPECT_EQ(S::times(a, S::one()), a);
    EXPECT_EQ(S::times(S::one(), a), a);
    // 0̄ annihilates ⊗.
    EXPECT_EQ(S::times(a, S::zero()), S::zero());
    EXPECT_EQ(S::times(S::zero(), a), S::zero());
    EXPECT_TRUE(S::is_zero(S::zero()));
    for (Dist b : values) {
      EXPECT_EQ(S::plus(a, b), S::plus(b, a));
      EXPECT_EQ(S::times(a, b), S::times(b, a));  // all three commute
      // improves() is consistent with ⊕.
      if (S::improves(a, b)) {
        EXPECT_EQ(S::plus(a, b), a);
      }
      for (Dist c : values) {
        EXPECT_EQ(S::plus(S::plus(a, b), c), S::plus(a, S::plus(b, c)));
        EXPECT_EQ(S::times(S::times(a, b), c), S::times(a, S::times(b, c)));
        // Distributivity.
        EXPECT_EQ(S::times(a, S::plus(b, c)),
                  S::plus(S::times(a, b), S::times(a, c)));
      }
    }
  }
}

TEST(Semirings, MinPlusLaws) {
  check_semiring_laws<MinPlusSemiring>({0, 1, 2.5, 7, kInf});
}

TEST(Semirings, MaxMinLaws) {
  check_semiring_laws<MaxMinSemiring>({0, 1, 2.5, 7, kInf});
}

TEST(Semirings, BoolLaws) { check_semiring_laws<BoolSemiring>({0, 1}); }

TEST(Semirings, GenericFwInstantiatesMinPlusIdentically) {
  Rng rng(1);
  const Graph graph = make_erdos_renyi(25, 3.0, rng);
  DistBlock generic(graph.num_vertices(), graph.num_vertices(), kInf);
  for (Vertex v = 0; v < graph.num_vertices(); ++v) {
    generic.at(v, v) = 0;
    for (const auto& nb : graph.neighbors(v))
      generic.at(v, nb.to) = nb.weight;
  }
  DistBlock specialized = generic;
  const std::int64_t generic_ops = semiring_fw<MinPlusSemiring>(generic);
  const std::int64_t special_ops = classical_fw(specialized);
  EXPECT_EQ(generic, specialized);
  EXPECT_EQ(generic_ops, special_ops);
}

TEST(Semirings, GenericAccumulateSkipsZeroOperands) {
  DistBlock a(4, 4, MaxMinSemiring::zero());  // all 0̄ = no capacity
  DistBlock b(4, 4, 5.0);
  DistBlock c(4, 4, MaxMinSemiring::zero());
  EXPECT_EQ((semiring_accumulate<MaxMinSemiring>(c, a, b)), 0);
  EXPECT_EQ((semiring_accumulate<MaxMinSemiring>(c, b, a)), 0);
}

TEST(Bottleneck, TinyExample) {
  // 0 -2- 1 -5- 2 and 0 -3- 2: widest 0→2 is min(3)=3 direct vs
  // min(2,5)=2 via 1 → 3.
  GraphBuilder builder(3);
  builder.add_edge(0, 1, 2);
  builder.add_edge(1, 2, 5);
  builder.add_edge(0, 2, 3);
  const Graph graph = std::move(builder).build();
  const DistBlock width = bottleneck_apsp(graph);
  EXPECT_EQ(width.at(0, 2), 3);   // direct 3 beats min(2,5) = 2 via 1
  EXPECT_EQ(width.at(0, 1), 3);   // detour 0-2-1 (min(3,5) = 3) beats 2
  EXPECT_EQ(width.at(1, 2), 5);
}

TEST(Bottleneck, PrefersHighCapacityDetour) {
  // Direct low-capacity edge vs a wide detour.
  GraphBuilder builder(3);
  builder.add_edge(0, 2, 1);   // narrow direct pipe
  builder.add_edge(0, 1, 10);
  builder.add_edge(1, 2, 10);  // wide detour
  const Graph graph = std::move(builder).build();
  const DistBlock width = bottleneck_apsp(graph);
  EXPECT_EQ(width.at(0, 2), 10);
}

class BottleneckFamilies : public ::testing::TestWithParam<int> {};

TEST_P(BottleneckFamilies, MatchesWidestDijkstra) {
  Rng rng(300 + static_cast<std::uint64_t>(GetParam()));
  WeightOptions opts;
  opts.min_weight = 1;
  opts.max_weight = 20;
  Graph graph;
  switch (GetParam()) {
    case 0: graph = make_grid2d(6, 6, rng, opts); break;
    case 1: graph = make_erdos_renyi(40, 4.0, rng, opts); break;
    case 2: graph = make_random_tree(40, rng, opts); break;
    default: graph = make_random_geometric(36, 0.3, rng, opts); break;
  }
  const DistBlock width = bottleneck_apsp(graph);
  for (Vertex s = 0; s < graph.num_vertices(); ++s) {
    const auto oracle = widest_path_sssp(graph, s);
    for (Vertex t = 0; t < graph.num_vertices(); ++t) {
      if (s == t) {
        EXPECT_TRUE(is_inf(width.at(s, t)));
      } else {
        EXPECT_EQ(width.at(s, t), oracle[static_cast<std::size_t>(t)])
            << s << "->" << t;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Families, BottleneckFamilies,
                         ::testing::Range(0, 4));

TEST(Bottleneck, SupernodalScheduleIsSemiringGeneric) {
  // Carré's claim, machine-checked: the identical elimination schedule
  // computes bottleneck paths when run over MaxMin.
  for (int height : {2, 3, 4}) {
    Rng rng(17);
    WeightOptions opts;
    opts.min_weight = 1;
    opts.max_weight = 9;
    const Graph graph = make_grid2d(9, 9, rng, opts);
    Rng nd_rng(18);
    const Dissection nd = nested_dissection(graph, height, nd_rng);
    const DistBlock direct = bottleneck_apsp(graph);
    const DistBlock supernodal = bottleneck_apsp_supernodal(graph, nd);
    EXPECT_EQ(supernodal, direct) << "height " << height;
  }
}

TEST(TransitiveClosure, MatchesComponents) {
  Rng rng(19);
  GraphBuilder builder(30);
  for (Vertex i = 0; i < 9; ++i) {
    builder.add_edge(i, i + 1, 1);
    builder.add_edge(10 + i, 11 + i, 1);
  }
  builder.add_edge(25, 26, 1);
  const Graph graph = std::move(builder).build();
  const DistBlock closure = transitive_closure(graph);
  const auto label = connected_components(graph);
  for (Vertex u = 0; u < 30; ++u)
    for (Vertex v = 0; v < 30; ++v)
      EXPECT_EQ(closure.at(u, v) == 1,
                label[static_cast<std::size_t>(u)] ==
                    label[static_cast<std::size_t>(v)])
          << u << "," << v;
}

TEST(TransitiveClosure, ValuesAreBoolean) {
  Rng rng(20);
  const Graph graph = make_erdos_renyi(40, 2.0, rng);
  const DistBlock closure = transitive_closure(graph);
  for (Dist v : closure.data()) EXPECT_TRUE(v == 0 || v == 1);
}

TEST(Bottleneck, RejectsNonPositiveCapacities) {
  GraphBuilder builder(2);
  builder.add_edge(0, 1, 0.0);
  const Graph graph = std::move(builder).build();
  EXPECT_THROW(bottleneck_apsp(graph), check_error);
}

}  // namespace
}  // namespace capsp
