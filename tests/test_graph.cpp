// Unit tests for the graph module: CSR invariants, builder semantics,
// generators (shape, connectivity, determinism), traversal utilities, I/O.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "util/check.hpp"

namespace capsp {
namespace {

TEST(GraphBuilder, BasicEdges) {
  GraphBuilder builder(4);
  builder.add_edge(0, 1, 2.0);
  builder.add_edge(1, 2, 3.0);
  const Graph graph = std::move(builder).build();
  EXPECT_EQ(graph.num_vertices(), 4);
  EXPECT_EQ(graph.num_edges(), 2);
  EXPECT_TRUE(graph.has_edge(0, 1));
  EXPECT_TRUE(graph.has_edge(1, 0));  // undirected
  EXPECT_FALSE(graph.has_edge(0, 2));
  EXPECT_EQ(graph.edge_weight(1, 2), 3.0);
  EXPECT_EQ(graph.degree(1), 2);
  EXPECT_EQ(graph.degree(3), 0);
}

TEST(GraphBuilder, DuplicateKeepsMinimumWeight) {
  GraphBuilder builder(3);
  builder.add_edge(0, 1, 5.0);
  builder.add_edge(1, 0, 2.0);
  builder.add_edge(0, 1, 9.0);
  const Graph graph = std::move(builder).build();
  EXPECT_EQ(graph.num_edges(), 1);
  EXPECT_EQ(graph.edge_weight(0, 1), 2.0);
}

TEST(GraphBuilder, SelfLoopsDropped) {
  GraphBuilder builder(2);
  builder.add_edge(0, 0, 1.0);
  builder.add_edge(0, 1, 1.0);
  const Graph graph = std::move(builder).build();
  EXPECT_EQ(graph.num_edges(), 1);
}

TEST(GraphBuilder, OutOfRangeRejected) {
  GraphBuilder builder(2);
  EXPECT_THROW(builder.add_edge(0, 2, 1.0), check_error);
  EXPECT_THROW(builder.add_edge(-1, 0, 1.0), check_error);
}

TEST(Graph, NeighborsSortedAndComplete) {
  GraphBuilder builder(5);
  builder.add_edge(2, 4, 1);
  builder.add_edge(2, 0, 1);
  builder.add_edge(2, 3, 1);
  const Graph graph = std::move(builder).build();
  const auto nbrs = graph.neighbors(2);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0].to, 0);
  EXPECT_EQ(nbrs[1].to, 3);
  EXPECT_EQ(nbrs[2].to, 4);
}

TEST(Graph, MinEdgeWeight) {
  GraphBuilder builder(3);
  builder.add_edge(0, 1, 4.0);
  builder.add_edge(1, 2, -2.5);
  const Graph graph = std::move(builder).build();
  EXPECT_EQ(graph.min_edge_weight(), -2.5);
}

TEST(Graph, MinEdgeWeightEmptyGraphIsZero) {
  const Graph graph = std::move(GraphBuilder(3)).build();
  EXPECT_EQ(graph.min_edge_weight(), 0);
}

TEST(Graph, PermutedPreservesEdges) {
  Rng rng(1);
  const Graph graph = make_grid2d(3, 3, rng);
  // Reverse permutation.
  std::vector<Vertex> perm(9);
  for (Vertex v = 0; v < 9; ++v) perm[static_cast<std::size_t>(v)] = 8 - v;
  const Graph permuted = graph.permuted(perm);
  EXPECT_EQ(permuted.num_edges(), graph.num_edges());
  for (Vertex v = 0; v < 9; ++v)
    for (const auto& nb : graph.neighbors(v))
      EXPECT_EQ(permuted.edge_weight(8 - v, 8 - nb.to), nb.weight);
}

TEST(Graph, PermutedRejectsNonPermutation) {
  Rng rng(1);
  const Graph graph = make_path(3, rng);
  const std::vector<Vertex> bad{0, 0, 1};
  EXPECT_THROW(graph.permuted(bad), check_error);
}

TEST(Graph, InducedSubgraphKeepsInternalEdgesOnly) {
  Rng rng(1);
  const Graph graph = make_grid2d(3, 3, rng, WeightOptions::unit());
  const std::vector<Vertex> subset{0, 1, 3, 4};  // top-left 2x2 of the grid
  const Graph sub = graph.induced_subgraph(subset);
  EXPECT_EQ(sub.num_vertices(), 4);
  EXPECT_EQ(sub.num_edges(), 4);  // the 2x2 square
  EXPECT_TRUE(sub.has_edge(0, 1));
  EXPECT_TRUE(sub.has_edge(2, 3));
  EXPECT_FALSE(sub.has_edge(0, 3));
}

TEST(Generators, Grid2dShape) {
  Rng rng(2);
  const Graph graph = make_grid2d(4, 6, rng);
  EXPECT_EQ(graph.num_vertices(), 24);
  // Grid edges: r*(c-1) + (r-1)*c.
  EXPECT_EQ(graph.num_edges(), 4 * 5 + 3 * 6);
  EXPECT_TRUE(is_connected(graph));
}

TEST(Generators, Grid2dDegreesBounded) {
  Rng rng(2);
  const Graph graph = make_grid2d(5, 5, rng);
  for (Vertex v = 0; v < graph.num_vertices(); ++v) {
    EXPECT_GE(graph.degree(v), 2);
    EXPECT_LE(graph.degree(v), 4);
  }
}

TEST(Generators, Grid3dShape) {
  Rng rng(2);
  const Graph graph = make_grid3d(3, 4, 5, rng);
  EXPECT_EQ(graph.num_vertices(), 60);
  EXPECT_EQ(graph.num_edges(), 2 * 4 * 5 + 3 * 3 * 5 + 3 * 4 * 4);
  EXPECT_TRUE(is_connected(graph));
}

TEST(Generators, PathAndCycle) {
  Rng rng(3);
  const Graph path = make_path(10, rng);
  EXPECT_EQ(path.num_edges(), 9);
  EXPECT_TRUE(is_connected(path));
  const Graph cycle = make_cycle(10, rng);
  EXPECT_EQ(cycle.num_edges(), 10);
  for (Vertex v = 0; v < 10; ++v) EXPECT_EQ(cycle.degree(v), 2);
}

TEST(Generators, CompleteGraph) {
  Rng rng(3);
  const Graph graph = make_complete(7, rng);
  EXPECT_EQ(graph.num_edges(), 21);
  for (Vertex v = 0; v < 7; ++v) EXPECT_EQ(graph.degree(v), 6);
}

TEST(Generators, RandomTreeIsTree) {
  Rng rng(4);
  const Graph graph = make_random_tree(50, rng);
  EXPECT_EQ(graph.num_edges(), 49);
  EXPECT_TRUE(is_connected(graph));
}

TEST(Generators, ErdosRenyiConnectedWithTargetDensity) {
  Rng rng(5);
  const Graph graph = make_erdos_renyi(200, 6.0, rng);
  EXPECT_TRUE(is_connected(graph));
  const double avg_degree = 2.0 * graph.num_edges() / graph.num_vertices();
  EXPECT_GT(avg_degree, 5.0);
  EXPECT_LT(avg_degree, 9.0);  // spanning tree + duplicate collapse slack
}

TEST(Generators, RandomGeometricConnected) {
  Rng rng(6);
  const Graph graph = make_random_geometric(150, 0.12, rng);
  EXPECT_EQ(graph.num_vertices(), 150);
  EXPECT_TRUE(is_connected(graph));
}

TEST(Generators, RmatConnectedAndSkewed) {
  Rng rng(7);
  const Graph graph = make_rmat(256, 8.0, rng);
  EXPECT_TRUE(is_connected(graph));
  // Power-law-ish: the maximum degree should far exceed the average.
  std::int64_t max_degree = 0;
  for (Vertex v = 0; v < graph.num_vertices(); ++v)
    max_degree = std::max<std::int64_t>(max_degree, graph.degree(v));
  const double avg = 2.0 * graph.num_edges() / graph.num_vertices();
  EXPECT_GT(static_cast<double>(max_degree), 3 * avg);
}

TEST(Generators, LadderShape) {
  Rng rng(8);
  const Graph graph = make_ladder(20, rng);
  EXPECT_EQ(graph.num_vertices(), 20);
  EXPECT_EQ(graph.num_edges(), 9 + 9 + 10);
  EXPECT_TRUE(is_connected(graph));
}

TEST(Generators, SmallWorldConnected) {
  Rng rng(9);
  const Graph graph = make_small_world(100, 3, 0.1, rng);
  EXPECT_TRUE(is_connected(graph));
  EXPECT_GE(graph.num_edges(), 290);  // ~nk edges + spanning tree overlap
}

TEST(Generators, DeterministicGivenSeed) {
  Rng a(42), b(42);
  const Graph ga = make_erdos_renyi(100, 4.0, a);
  const Graph gb = make_erdos_renyi(100, 4.0, b);
  ASSERT_EQ(ga.num_edges(), gb.num_edges());
  for (Vertex v = 0; v < ga.num_vertices(); ++v) {
    const auto na = ga.neighbors(v), nb = gb.neighbors(v);
    ASSERT_EQ(na.size(), nb.size());
    for (std::size_t i = 0; i < na.size(); ++i) {
      EXPECT_EQ(na[i].to, nb[i].to);
      EXPECT_EQ(na[i].weight, nb[i].weight);
    }
  }
}

TEST(Generators, WeightOptionsRespected) {
  Rng rng(10);
  WeightOptions opts;
  opts.min_weight = 3;
  opts.max_weight = 9;
  opts.integer = true;
  const Graph graph = make_grid2d(6, 6, rng, opts);
  for (Vertex v = 0; v < graph.num_vertices(); ++v)
    for (const auto& nb : graph.neighbors(v)) {
      EXPECT_GE(nb.weight, 3);
      EXPECT_LE(nb.weight, 9);
      EXPECT_EQ(nb.weight, std::round(nb.weight));
    }
}

TEST(Generators, NegativeFractionProducesNegativeEdges) {
  Rng rng(11);
  WeightOptions opts;
  opts.negative_fraction = 0.5;
  const Graph graph = make_path(200, rng, opts);
  int negative = 0;
  for (Vertex v = 0; v < graph.num_vertices(); ++v)
    for (const auto& nb : graph.neighbors(v)) negative += (nb.weight < 0);
  negative /= 2;
  EXPECT_GT(negative, 60);
  EXPECT_LT(negative, 140);
}

TEST(Generators, PaperFigure1Structure) {
  const Graph graph = make_paper_figure1();
  EXPECT_EQ(graph.num_vertices(), 7);
  // No edge crosses between the two triangles except through vertex 6.
  for (Vertex u : {0, 1, 2})
    for (Vertex v : {3, 4, 5}) EXPECT_FALSE(graph.has_edge(u, v));
  EXPECT_TRUE(is_connected(graph));
}

TEST(Algorithms, ConnectedComponents) {
  GraphBuilder builder(6);
  builder.add_edge(0, 1, 1);
  builder.add_edge(2, 3, 1);
  builder.add_edge(3, 4, 1);
  const Graph graph = std::move(builder).build();
  const auto label = connected_components(graph);
  EXPECT_EQ(count_components(graph), 3);
  EXPECT_EQ(label[0], label[1]);
  EXPECT_EQ(label[2], label[3]);
  EXPECT_EQ(label[3], label[4]);
  EXPECT_NE(label[0], label[2]);
  EXPECT_NE(label[2], label[5]);
  EXPECT_FALSE(is_connected(graph));
}

TEST(Algorithms, BfsLevels) {
  Rng rng(12);
  const Graph graph = make_path(5, rng);
  const auto level = bfs_levels(graph, 0);
  for (Vertex v = 0; v < 5; ++v) EXPECT_EQ(level[static_cast<std::size_t>(v)], v);
}

TEST(Algorithms, BfsUnreachableIsMinusOne) {
  const Graph graph = std::move(GraphBuilder(3)).build();
  const auto level = bfs_levels(graph, 0);
  EXPECT_EQ(level[0], 0);
  EXPECT_EQ(level[1], -1);
  EXPECT_EQ(level[2], -1);
}

TEST(Algorithms, PseudoPeripheralOnPathIsEndpoint) {
  Rng rng(13);
  const Graph graph = make_path(31, rng);
  const Vertex v = pseudo_peripheral_vertex(graph, 15);
  EXPECT_TRUE(v == 0 || v == 30) << v;
}

TEST(Io, RoundTripPreservesGraph) {
  Rng rng(14);
  const Graph graph = make_erdos_renyi(40, 3.0, rng);
  std::stringstream stream;
  write_edge_list(stream, graph);
  const Graph loaded = read_edge_list(stream);
  ASSERT_EQ(loaded.num_vertices(), graph.num_vertices());
  ASSERT_EQ(loaded.num_edges(), graph.num_edges());
  for (Vertex v = 0; v < graph.num_vertices(); ++v)
    for (const auto& nb : graph.neighbors(v))
      EXPECT_EQ(loaded.edge_weight(v, nb.to), nb.weight);
}

TEST(Io, CommentsAndBlankLinesSkipped) {
  std::stringstream stream("# a comment\n\n2 1\n# another\n0 1 2.5\n");
  const Graph graph = read_edge_list(stream);
  EXPECT_EQ(graph.num_vertices(), 2);
  EXPECT_EQ(graph.edge_weight(0, 1), 2.5);
}

TEST(Io, TruncatedFileRejected) {
  std::stringstream stream("3 2\n0 1 1.0\n");
  EXPECT_THROW(read_edge_list(stream), check_error);
}

}  // namespace
}  // namespace capsp
